//! HNSW — Hierarchical Navigable Small World graphs (Malkov & Yashunin,
//! TPAMI 2020).
//!
//! The memory-based index used by every database in the paper. The
//! implementation follows the original algorithm:
//!
//! * geometric level assignment with normalization factor `mL = 1/ln(M)`,
//! * greedy descent through the upper layers,
//! * `ef`-bounded best-first search at each layer,
//! * neighbor selection by the pruning heuristic (Algorithm 4 of the paper),
//! * degree caps `M` on upper layers and `2M` on layer 0.
//!
//! Builds are parallel (scoped threads + per-node locks, the hnswlib
//! approach); set [`HnswConfig::threads`] to 1 for a fully deterministic
//! graph.

use crate::trace::{QueryTrace, SearchOutput};
use crate::{par, SearchParams, VectorIndex};
use sann_core::rng::SplitMix64;
use sann_core::sync::{Mutex, RwLock};
use sann_core::{Dataset, Error, Metric, Neighbor, Result, TopK};
use std::collections::BinaryHeap;

/// Build-time configuration for [`HnswIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswConfig {
    /// Degree parameter `M` (paper Table II uses 16).
    pub m: usize,
    /// Construction queue length `efConstruction` (paper uses 200).
    pub ef_construction: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
    /// Build threads; 0 means all cores, 1 means deterministic.
    pub threads: usize,
}

impl Default for HnswConfig {
    /// The paper's build parameters: `M = 16`, `efConstruction = 200`.
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 200,
            seed: 0x45_4653,
            threads: 0,
        }
    }
}

/// A built HNSW index.
pub struct HnswIndex {
    data: Dataset,
    metric: Metric,
    /// `links[node][level]` = neighbor ids. `links[node].len() - 1` is the
    /// node's top level.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
    config: HnswConfig,
}

impl std::fmt::Debug for HnswIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnswIndex")
            .field("len", &self.data.len())
            .field("dim", &self.data.dim())
            .field("max_level", &self.max_level)
            .field("m", &self.config.m)
            .finish()
    }
}

/// Mutable graph state during construction.
struct Builder<'a> {
    data: &'a Dataset,
    metric: Metric,
    m: usize,
    ef: usize,
    levels: Vec<usize>,
    /// Per node, per level adjacency under its own lock.
    links: Vec<Vec<Mutex<Vec<u32>>>>,
    /// (entry node, top level) — updated as taller nodes are inserted.
    entry: RwLock<(u32, usize)>,
}

impl Builder<'_> {
    fn dist(&self, a: &[f32], id: u32) -> f32 {
        self.metric.distance(a, self.data.row(id as usize))
    }

    fn max_degree(&self, level: usize) -> usize {
        if level == 0 {
            self.m * 2
        } else {
            self.m
        }
    }

    /// Greedy single-entry descent at `level`.
    fn greedy(&self, q: &[f32], mut ep: u32, level: usize) -> u32 {
        let mut best = self.dist(q, ep);
        loop {
            let mut improved = false;
            let neighbors = self.links[ep as usize][level].lock().clone();
            for n in neighbors {
                let d = self.dist(q, n);
                if d < best {
                    best = d;
                    ep = n;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// `ef`-bounded best-first search at `level`, returning candidates
    /// closest-first.
    fn search_layer(&self, q: &[f32], ep: u32, level: usize, ef: usize) -> Vec<Neighbor> {
        let mut visited = vec![false; self.data.len()];
        visited[ep as usize] = true;
        let d0 = self.dist(q, ep);
        // Min-heap of frontier candidates via Reverse ordering on Neighbor.
        let mut frontier: BinaryHeap<std::cmp::Reverse<Neighbor>> = BinaryHeap::new();
        frontier.push(std::cmp::Reverse(Neighbor::new(ep, d0)));
        let mut best = TopK::new(ef);
        best.push(ep, d0);
        while let Some(std::cmp::Reverse(cand)) = frontier.pop() {
            if cand.dist > best.bound() {
                break;
            }
            let neighbors = self.links[cand.id as usize][level].lock().clone();
            for n in neighbors {
                if std::mem::replace(&mut visited[n as usize], true) {
                    continue;
                }
                let d = self.dist(q, n);
                if d < best.bound() || !best.is_full() {
                    best.push(n, d);
                    frontier.push(std::cmp::Reverse(Neighbor::new(n, d)));
                }
            }
        }
        best.into_sorted_vec()
    }

    /// Neighbor-selection heuristic (keep a candidate only if it is closer
    /// to the query than to every already-kept candidate).
    fn select_neighbors(&self, candidates: &[Neighbor], m: usize) -> Vec<u32> {
        let mut kept: Vec<Neighbor> = Vec::with_capacity(m);
        for &c in candidates {
            if kept.len() >= m {
                break;
            }
            let cv = self.data.row(c.id as usize);
            let dominated = kept
                .iter()
                .any(|r| self.metric.distance(cv, self.data.row(r.id as usize)) < c.dist);
            if !dominated {
                kept.push(c);
            }
        }
        // Fall back to plain nearest if the heuristic pruned too aggressively.
        if kept.len() < m {
            for &c in candidates {
                if kept.len() >= m {
                    break;
                }
                if !kept.iter().any(|r| r.id == c.id) {
                    kept.push(c);
                }
            }
        }
        kept.into_iter().map(|n| n.id).collect()
    }

    fn insert(&self, id: u32) {
        let q = self.data.row(id as usize);
        let node_level = self.levels[id as usize];
        let (mut ep, top) = *self.entry.read();

        // Descend through layers above the node's level.
        for l in (node_level + 1..=top).rev() {
            ep = self.greedy(q, ep, l);
        }

        // Connect on each shared layer.
        for l in (0..=node_level.min(top)).rev() {
            let found = self.search_layer(q, ep, l, self.ef);
            let selected = self.select_neighbors(&found, self.max_degree(l));
            ep = found.first().map(|n| n.id).unwrap_or(ep);
            *self.links[id as usize][l].lock() = selected.clone();
            for n in selected {
                let mut adj = self.links[n as usize][l].lock();
                if !adj.contains(&id) {
                    adj.push(id);
                }
                let cap = self.max_degree(l);
                if adj.len() > cap {
                    // Re-prune the overflowing node with the same heuristic.
                    let nv = self.data.row(n as usize);
                    let mut cands: Vec<Neighbor> = adj
                        .iter()
                        .map(|&x| Neighbor::new(x, self.dist(nv, x)))
                        .collect();
                    cands.sort_unstable();
                    *adj = self.select_neighbors(&cands, cap);
                }
            }
        }

        // Become the entry point if taller than the current one.
        if node_level > top {
            let mut entry = self.entry.write();
            if node_level > entry.1 {
                *entry = (id, node_level);
            }
        }
    }
}

impl HnswIndex {
    /// Builds the index over `data`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for an empty dataset and
    /// [`Error::InvalidParameter`] for `m < 2`.
    pub fn build(data: &Dataset, metric: Metric, config: HnswConfig) -> Result<HnswIndex> {
        if data.is_empty() {
            return Err(Error::Empty("dataset"));
        }
        if config.m < 2 {
            return Err(Error::invalid_parameter("m", "must be at least 2"));
        }
        let n = data.len();
        let ml = 1.0 / (config.m as f64).ln();
        let mut rng = SplitMix64::new(config.seed);
        let levels: Vec<usize> = (0..n)
            .map(|_| {
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                ((-u.ln() * ml) as usize).min(31)
            })
            .collect();

        let links: Vec<Vec<Mutex<Vec<u32>>>> = levels
            .iter()
            .map(|&l| (0..=l).map(|_| Mutex::new(Vec::new())).collect())
            .collect();

        let builder = Builder {
            data,
            metric,
            m: config.m,
            ef: config.ef_construction.max(config.m),
            levels,
            links,
            entry: RwLock::new((0, 0)),
        };
        // Seed the entry point with node 0 at its own level.
        *builder.entry.write() = (0, builder.levels[0]);

        let threads = if config.threads == 0 {
            par::default_threads()
        } else {
            config.threads
        };
        // Node 0 is already the entry; insert the rest. Parallel ranges each
        // insert their ids in order, which matches hnswlib's behaviour.
        par::par_ranges(n - 1, threads, |start, end| {
            for i in start..end {
                builder.insert((i + 1) as u32);
            }
        });

        let (entry, max_level) = *builder.entry.read();
        let links: Vec<Vec<Vec<u32>>> = builder
            .links
            .into_iter()
            .map(|per_level| per_level.into_iter().map(|m| m.into_inner()).collect())
            .collect();
        Ok(HnswIndex {
            data: data.clone(),
            metric,
            links,
            entry,
            max_level,
            config,
        })
    }

    /// The entry node id.
    pub fn entry_point(&self) -> u32 {
        self.entry
    }

    /// Highest layer in the graph.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Build configuration used.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Degree of `id` at `level` (diagnostics); 0 when the node does not
    /// reach that level.
    pub fn degree(&self, id: u32, level: usize) -> usize {
        self.links
            .get(id as usize)
            .and_then(|l| l.get(level))
            .map(Vec::len)
            .unwrap_or(0)
    }

    /// Query-time graph search with a pluggable distance oracle: greedy
    /// descent through the upper layers, then an `ef`-bounded best-first
    /// search at layer 0. This is the engine behind both full-precision
    /// search ([`HnswIndex::search`]) and quantized search
    /// ([`crate::hnsw_sq::HnswSqIndex`]).
    pub(crate) fn search_graph<F>(&self, mut dist: F, ef: usize) -> Vec<Neighbor>
    where
        F: FnMut(u32) -> f32,
    {
        // Greedy descent through upper layers.
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            let mut best = dist(ep);
            loop {
                let mut improved = false;
                let adj = self.links[ep as usize]
                    .get(l)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                for &n in adj {
                    let d = dist(n);
                    if d < best {
                        best = d;
                        ep = n;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // ef-bounded best-first at layer 0.
        let mut visited = vec![false; self.data.len()];
        visited[ep as usize] = true;
        let d0 = dist(ep);
        let mut frontier: BinaryHeap<std::cmp::Reverse<Neighbor>> = BinaryHeap::new();
        frontier.push(std::cmp::Reverse(Neighbor::new(ep, d0)));
        let mut best = TopK::new(ef);
        best.push(ep, d0);
        while let Some(std::cmp::Reverse(cand)) = frontier.pop() {
            if cand.dist > best.bound() {
                break;
            }
            for &n in &self.links[cand.id as usize][0] {
                if std::mem::replace(&mut visited[n as usize], true) {
                    continue;
                }
                let d = dist(n);
                if d < best.bound() || !best.is_full() {
                    best.push(n, d);
                    frontier.push(std::cmp::Reverse(Neighbor::new(n, d)));
                }
            }
        }
        best.into_sorted_vec()
    }

    pub(crate) fn persist_payload(&self, w: &mut sann_core::buf::ByteWriter) {
        w.put_u8(self.metric.tag());
        w.put_u32_le(self.config.m as u32);
        w.put_u32_le(self.config.ef_construction as u32);
        w.put_u64_le(self.config.seed);
        w.put_u32_le(self.config.threads as u32);
        w.put_u32_le(self.entry);
        w.put_u32_le(self.max_level as u32);
        self.data.encode_into(w);
        for per_level in &self.links {
            w.put_u32_le(per_level.len() as u32);
            for adj in per_level {
                w.put_u32_le(adj.len() as u32);
                for &n in adj {
                    w.put_u32_le(n);
                }
            }
        }
    }

    pub(crate) fn from_persist(r: &mut sann_core::buf::ByteReader<'_>) -> Result<HnswIndex> {
        let metric = Metric::from_tag(r.get_u8()?)
            .ok_or_else(|| Error::Corrupt("hnsw: unknown metric tag".into()))?;
        let config = HnswConfig {
            m: r.get_u32_le()? as usize,
            ef_construction: r.get_u32_le()? as usize,
            seed: r.get_u64_le()?,
            threads: r.get_u32_le()? as usize,
        };
        let entry = r.get_u32_le()?;
        let max_level = r.get_u32_le()? as usize;
        let data = Dataset::decode_from(r)?;
        let n = data.len();
        if entry as usize >= n || max_level > 32 {
            return Err(Error::Corrupt("hnsw: entry/level out of range".into()));
        }
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let levels = r.get_u32_le()? as usize;
            if levels == 0 || levels > 33 {
                return Err(Error::Corrupt("hnsw: bad level count".into()));
            }
            let mut per_level = Vec::with_capacity(levels);
            for _ in 0..levels {
                let len = r.get_u32_le()? as usize;
                if r.remaining() < len * 4 {
                    return Err(Error::Corrupt("hnsw: truncated adjacency".into()));
                }
                let mut adj = Vec::with_capacity(len);
                for _ in 0..len {
                    let nb = r.get_u32_le()?;
                    if nb as usize >= n {
                        return Err(Error::Corrupt("hnsw: neighbor out of range".into()));
                    }
                    adj.push(nb);
                }
                per_level.push(adj);
            }
            links.push(per_level);
        }
        Ok(HnswIndex {
            data,
            metric,
            links,
            entry,
            max_level,
            config,
        })
    }

    /// The raw vectors the index was built over.
    pub(crate) fn data(&self) -> &Dataset {
        &self.data
    }

    /// The metric searches use.
    pub fn metric(&self) -> Metric {
        self.metric
    }
}

impl VectorIndex for HnswIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn kind(&self) -> &'static str {
        "hnsw"
    }

    fn is_storage_based(&self) -> bool {
        false
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        if query.len() != self.data.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.data.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let ef = params.ef_search.max(k);
        let mut dists = 0u64;
        let mut found = self.search_graph(
            |id| {
                dists += 1;
                self.metric.distance(query, self.data.row(id as usize))
            },
            ef,
        );
        found.truncate(k);
        let mut trace = QueryTrace::new();
        trace.push_compute(dists, self.data.dim() as u32);
        Ok(SearchOutput {
            neighbors: found,
            trace,
        })
    }

    fn memory_bytes(&self) -> u64 {
        let vectors = (self.data.len() * self.data.row_bytes()) as u64;
        let edges: u64 = self
            .links
            .iter()
            .map(|per_level| {
                per_level
                    .iter()
                    .map(|adj| 4 * adj.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        vectors + edges
    }

    fn storage_bytes(&self) -> u64 {
        0
    }

    fn persist_encode(&self) -> Option<Vec<u8>> {
        Some(crate::persist::frame(self.kind(), |w| {
            self.persist_payload(w)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::recall::recall_at_k;
    use sann_datagen::{EmbeddingModel, GroundTruth};

    fn build_small(threads: usize) -> (Dataset, Dataset, GroundTruth, HnswIndex) {
        let model = EmbeddingModel::new(48, 8, 31);
        let base = model.generate(2_000);
        let queries = model.generate_queries(30);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        let config = HnswConfig {
            threads,
            ..HnswConfig::default()
        };
        let index = HnswIndex::build(&base, Metric::L2, config).unwrap();
        (base, queries, gt, index)
    }

    fn mean_recall(index: &HnswIndex, queries: &Dataset, gt: &GroundTruth, ef: usize) -> f64 {
        let params = SearchParams::default().with_ef_search(ef);
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let out = index.search(q, 10, &params).unwrap();
            total += recall_at_k(gt.neighbors(i), &out.ids(), 10);
        }
        total / queries.len() as f64
    }

    #[test]
    fn reaches_high_recall() {
        let (_, queries, gt, index) = build_small(0);
        let recall = mean_recall(&index, &queries, &gt, 64);
        assert!(recall > 0.95, "recall {recall} too low");
    }

    #[test]
    fn deterministic_single_threaded_build() {
        let (_, _, _, a) = build_small(1);
        let (_, _, _, b) = build_small(1);
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry_point(), b.entry_point());
    }

    #[test]
    fn higher_ef_does_not_hurt_recall_much() {
        let (_, queries, gt, index) = build_small(0);
        let low = mean_recall(&index, &queries, &gt, 10);
        let high = mean_recall(&index, &queries, &gt, 128);
        assert!(
            high >= low - 0.02,
            "ef=128 recall {high} << ef=10 recall {low}"
        );
        assert!(high > 0.95);
    }

    #[test]
    fn degree_caps_hold() {
        let (_, _, _, index) = build_small(0);
        let m = index.config().m;
        for id in 0..index.len() as u32 {
            assert!(
                index.degree(id, 0) <= 2 * m,
                "layer-0 degree cap violated at {id}"
            );
            for l in 1..=index.max_level() {
                assert!(
                    index.degree(id, l) <= m,
                    "layer-{l} degree cap violated at {id}"
                );
            }
        }
    }

    #[test]
    fn finds_self_exactly() {
        let (base, _, _, index) = build_small(0);
        for i in (0..base.len()).step_by(211) {
            let out = index
                .search(base.row(i), 1, &SearchParams::default())
                .unwrap();
            assert_eq!(out.neighbors[0].id, i as u32, "query {i}");
        }
    }

    #[test]
    fn trace_scales_with_ef() {
        let (_, queries, _, index) = build_small(0);
        let small = index
            .search(
                queries.row(0),
                10,
                &SearchParams::default().with_ef_search(10),
            )
            .unwrap();
        let large = index
            .search(
                queries.row(0),
                10,
                &SearchParams::default().with_ef_search(200),
            )
            .unwrap();
        assert!(large.trace.compute_count() > small.trace.compute_count());
        assert_eq!(small.trace.io_count(), 0);
    }

    #[test]
    fn search_visits_tiny_fraction_of_dataset() {
        let (base, queries, _, index) = build_small(0);
        let out = index
            .search(
                queries.row(0),
                10,
                &SearchParams::default().with_ef_search(27),
            )
            .unwrap();
        assert!(
            out.trace.compute_count() < (base.len() / 4) as u64,
            "HNSW visited {} of {}",
            out.trace.compute_count(),
            base.len()
        );
    }

    #[test]
    fn rejects_invalid_build_and_search() {
        let empty = Dataset::with_dim(8);
        assert!(HnswIndex::build(&empty, Metric::L2, HnswConfig::default()).is_err());
        let data = EmbeddingModel::new(8, 2, 1).generate(10);
        assert!(HnswIndex::build(
            &data,
            Metric::L2,
            HnswConfig {
                m: 1,
                ..HnswConfig::default()
            }
        )
        .is_err());
        let index = HnswIndex::build(&data, Metric::L2, HnswConfig::default()).unwrap();
        assert!(index
            .search(&[0.0; 4], 1, &SearchParams::default())
            .is_err());
        assert!(index
            .search(&[0.0; 8], 0, &SearchParams::default())
            .is_err());
    }

    #[test]
    fn single_element_index_works() {
        let data = Dataset::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let index = HnswIndex::build(&data, Metric::L2, HnswConfig::default()).unwrap();
        let out = index
            .search(&[1.0, 2.0], 5, &SearchParams::default())
            .unwrap();
        assert_eq!(out.neighbors.len(), 1);
        assert_eq!(out.neighbors[0].id, 0);
    }
}
