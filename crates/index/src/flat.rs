//! Exact brute-force index — the correctness baseline.

use crate::trace::{QueryTrace, SearchOutput};
use crate::{SearchParams, VectorIndex};
use sann_core::{Dataset, Error, Metric, Result, TopK};

/// An exact (non-approximate) index that scans every vector.
///
/// Used as the correctness baseline for the approximate indexes and for tiny
/// collections where an index is not worth building.
///
/// # Examples
///
/// ```
/// use sann_index::{FlatIndex, SearchParams, VectorIndex};
/// use sann_core::{Dataset, Metric};
///
/// let data = Dataset::from_rows(vec![vec![0.0, 0.0], vec![5.0, 5.0]])?;
/// let index = FlatIndex::build(&data, Metric::L2);
/// let out = index.search(&[4.0, 4.0], 1, &SearchParams::default())?;
/// assert_eq!(out.neighbors[0].id, 1);
/// # Ok::<(), sann_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlatIndex {
    data: Dataset,
    metric: Metric,
}

impl FlatIndex {
    /// Builds (copies) the index.
    pub fn build(data: &Dataset, metric: Metric) -> FlatIndex {
        FlatIndex {
            data: data.clone(),
            metric,
        }
    }

    /// The metric searches use.
    pub fn metric(&self) -> Metric {
        self.metric
    }
}

impl VectorIndex for FlatIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn kind(&self) -> &'static str {
        "flat"
    }

    fn is_storage_based(&self) -> bool {
        false
    }

    fn search(&self, query: &[f32], k: usize, _params: &SearchParams) -> Result<SearchOutput> {
        if query.len() != self.data.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.data.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let mut topk = TopK::new(k);
        for (id, row) in self.data.iter().enumerate() {
            topk.push(id as u32, self.metric.distance(query, row));
        }
        let mut trace = QueryTrace::new();
        trace.push_compute(self.data.len() as u64, self.data.dim() as u32);
        Ok(SearchOutput {
            neighbors: topk.into_sorted_vec(),
            trace,
        })
    }

    fn memory_bytes(&self) -> u64 {
        (self.data.len() * self.data.row_bytes()) as u64
    }

    fn storage_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_datagen::EmbeddingModel;

    #[test]
    fn finds_self() {
        let data = EmbeddingModel::new(16, 2, 1).generate(100);
        let index = FlatIndex::build(&data, Metric::L2);
        for i in (0..100).step_by(17) {
            let out = index
                .search(data.row(i), 1, &SearchParams::default())
                .unwrap();
            assert_eq!(out.neighbors[0].id, i as u32);
        }
    }

    #[test]
    fn trace_counts_full_scan() {
        let data = EmbeddingModel::new(16, 2, 1).generate(100);
        let index = FlatIndex::build(&data, Metric::L2);
        let out = index
            .search(data.row(0), 5, &SearchParams::default())
            .unwrap();
        assert_eq!(out.trace.compute_count(), 100);
        assert_eq!(out.trace.io_count(), 0);
        assert_eq!(index.memory_bytes(), 100 * 16 * 4);
        assert_eq!(index.storage_bytes(), 0);
    }

    #[test]
    fn rejects_wrong_dim_and_zero_k() {
        let data = EmbeddingModel::new(16, 2, 1).generate(10);
        let index = FlatIndex::build(&data, Metric::L2);
        assert!(index
            .search(&[1.0; 8], 1, &SearchParams::default())
            .is_err());
        assert!(index
            .search(&[1.0; 16], 0, &SearchParams::default())
            .is_err());
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let data = EmbeddingModel::new(8, 2, 2).generate(50);
        let index = FlatIndex::build(&data, Metric::L2);
        let out = index
            .search(data.row(0), 10, &SearchParams::default())
            .unwrap();
        for pair in out.neighbors.windows(2) {
            assert!(pair[0].dist <= pair[1].dist);
        }
    }
}
