//! Vamana graph construction — the in-memory half of DiskANN (Subramanya et
//! al., NeurIPS 2019).
//!
//! Vamana builds a flat proximity graph with bounded degree `R` using
//! *robust pruning*: a candidate edge is kept only if no already-kept
//! neighbor is `alpha`× closer to the candidate than the node itself. With
//! `alpha > 1` the graph keeps a few long-range edges, which is what bounds
//! the number of hops (and therefore round trips to storage) per search.

use crate::par;
use sann_core::rng::SplitMix64;
use sann_core::sync::Mutex;
use sann_core::{Dataset, Error, Metric, Neighbor, Result, TopK};
use std::collections::BinaryHeap;

/// Build-time configuration for [`VamanaGraph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VamanaConfig {
    /// Maximum out-degree `R` (DiskANN default 64).
    pub r: usize,
    /// Build-time candidate list size `L` (DiskANN default 100).
    pub l_build: usize,
    /// Pruning slack `alpha` (DiskANN default 1.2). `1.0` yields a plain
    /// relative-neighborhood-style graph with longer search paths.
    pub alpha: f32,
    /// RNG seed for the initial random graph and insertion order.
    pub seed: u64,
    /// Build threads; 0 means all cores, 1 means deterministic.
    pub threads: usize,
}

impl Default for VamanaConfig {
    fn default() -> Self {
        VamanaConfig {
            r: 64,
            l_build: 100,
            alpha: 1.2,
            seed: 0xD15C,
            threads: 0,
        }
    }
}

/// A built Vamana graph: bounded-degree adjacency plus the medoid entry
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct VamanaGraph {
    adj: Vec<Vec<u32>>,
    medoid: u32,
    r: usize,
}

impl VamanaGraph {
    /// Builds the graph over `data` with two passes (alpha = 1.0, then the
    /// configured alpha), as in the DiskANN paper.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for an empty dataset and
    /// [`Error::InvalidParameter`] for `r == 0` or `alpha < 1.0`.
    pub fn build(data: &Dataset, metric: Metric, config: VamanaConfig) -> Result<VamanaGraph> {
        if data.is_empty() {
            return Err(Error::Empty("dataset"));
        }
        if config.r == 0 {
            return Err(Error::invalid_parameter("r", "must be positive"));
        }
        if config.alpha < 1.0 {
            return Err(Error::invalid_parameter("alpha", "must be >= 1.0"));
        }
        let n = data.len();
        let r = config.r.min(n.saturating_sub(1)).max(1);
        let medoid = find_medoid(data);
        let mut rng = SplitMix64::new(config.seed);

        // Random initial graph.
        let adj: Vec<Mutex<Vec<u32>>> = (0..n)
            .map(|i| {
                let mut nbrs = Vec::with_capacity(r);
                while nbrs.len() < r && n > 1 {
                    let cand = rng.next_bounded(n as u64) as u32;
                    if cand as usize != i && !nbrs.contains(&cand) {
                        nbrs.push(cand);
                    }
                }
                Mutex::new(nbrs)
            })
            .collect();

        let builder = GraphBuilder {
            data,
            metric,
            adj,
            medoid,
            r,
            l_build: config.l_build,
        };

        // Random insertion order, shared by both passes.
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);

        let threads = if config.threads == 0 {
            par::default_threads()
        } else {
            config.threads
        };
        for alpha in [1.0f32, config.alpha] {
            par::par_ranges(n, threads, |start, end| {
                for &id in &order[start..end] {
                    builder.refine(id, alpha);
                }
            });
        }
        builder.enforce_degree_bound(config.alpha, threads);

        let adj = builder.adj.into_iter().map(|m| m.into_inner()).collect();
        Ok(VamanaGraph { adj, medoid, r })
    }

    /// Entry point for searches (the dataset medoid).
    pub fn medoid(&self) -> u32 {
        self.medoid
    }

    /// Degree bound `R`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Out-neighbors of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: u32) -> &[u32] {
        &self.adj[id as usize]
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.adj.iter().map(|a| a.len() as u64).sum()
    }

    /// Appends the canonical little-endian encoding (degree bound, medoid,
    /// then per-node adjacency lists) to `buf`.
    pub fn encode_into(&self, buf: &mut sann_core::buf::ByteWriter) {
        buf.put_u32_le(self.r as u32);
        buf.put_u32_le(self.medoid);
        buf.put_u64_le(self.adj.len() as u64);
        for nbrs in &self.adj {
            buf.put_u32_le(nbrs.len() as u32);
            for &n in nbrs {
                buf.put_u32_le(n);
            }
        }
    }

    /// Reads a graph previously written by [`VamanaGraph::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] on truncation or an out-of-range medoid /
    /// neighbor id.
    pub fn decode_from(r: &mut sann_core::buf::ByteReader<'_>) -> Result<VamanaGraph> {
        let degree = r.get_u32_le()? as usize;
        let medoid = r.get_u32_le()?;
        let n = r.get_u64_le()? as usize;
        if medoid as usize >= n {
            return Err(Error::Corrupt("vamana: medoid out of range".into()));
        }
        let mut adj = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.get_u32_le()? as usize;
            if r.remaining() < len * 4 {
                return Err(Error::Corrupt("vamana: truncated adjacency".into()));
            }
            let mut nbrs = Vec::with_capacity(len);
            for _ in 0..len {
                let nb = r.get_u32_le()?;
                if nb as usize >= n {
                    return Err(Error::Corrupt("vamana: neighbor out of range".into()));
                }
                nbrs.push(nb);
            }
            adj.push(nbrs);
        }
        Ok(VamanaGraph {
            adj,
            medoid,
            r: degree,
        })
    }

    /// Greedy best-first search over the graph in memory (used by tests and
    /// as the reference for DiskANN's beam search). Returns the `l` best
    /// candidates found plus the number of distance evaluations.
    pub fn greedy_search(
        &self,
        data: &Dataset,
        metric: Metric,
        query: &[f32],
        l: usize,
    ) -> (Vec<Neighbor>, u64) {
        let mut dists = 0u64;
        let mut visited = vec![false; self.adj.len()];
        let start = self.medoid;
        visited[start as usize] = true;
        let d0 = metric.distance(query, data.row(start as usize));
        dists += 1;
        let mut best = TopK::new(l);
        best.push(start, d0);
        let mut frontier: BinaryHeap<std::cmp::Reverse<Neighbor>> = BinaryHeap::new();
        frontier.push(std::cmp::Reverse(Neighbor::new(start, d0)));
        while let Some(std::cmp::Reverse(cand)) = frontier.pop() {
            if cand.dist > best.bound() {
                break;
            }
            for &nb in &self.adj[cand.id as usize] {
                if std::mem::replace(&mut visited[nb as usize], true) {
                    continue;
                }
                let d = metric.distance(query, data.row(nb as usize));
                dists += 1;
                if d < best.bound() || !best.is_full() {
                    best.push(nb, d);
                    frontier.push(std::cmp::Reverse(Neighbor::new(nb, d)));
                }
            }
        }
        (best.into_sorted_vec(), dists)
    }
}

struct GraphBuilder<'a> {
    data: &'a Dataset,
    metric: Metric,
    adj: Vec<Mutex<Vec<u32>>>,
    medoid: u32,
    r: usize,
    l_build: usize,
}

impl GraphBuilder<'_> {
    fn dist(&self, a: &[f32], id: u32) -> f32 {
        self.metric.distance(a, self.data.row(id as usize))
    }

    /// Best-first search from the medoid collecting every visited node.
    fn search_visited(&self, query: &[f32]) -> Vec<Neighbor> {
        let mut visited_set = vec![false; self.adj.len()];
        let start = self.medoid;
        visited_set[start as usize] = true;
        let d0 = self.dist(query, start);
        let mut best = TopK::new(self.l_build);
        best.push(start, d0);
        let mut frontier: BinaryHeap<std::cmp::Reverse<Neighbor>> = BinaryHeap::new();
        frontier.push(std::cmp::Reverse(Neighbor::new(start, d0)));
        let mut all_visited = Vec::with_capacity(self.l_build * 4);
        while let Some(std::cmp::Reverse(cand)) = frontier.pop() {
            if cand.dist > best.bound() {
                break;
            }
            all_visited.push(cand);
            let nbrs = self.adj[cand.id as usize].lock().clone();
            for nb in nbrs {
                if std::mem::replace(&mut visited_set[nb as usize], true) {
                    continue;
                }
                let d = self.dist(query, nb);
                if d < best.bound() || !best.is_full() {
                    best.push(nb, d);
                    frontier.push(std::cmp::Reverse(Neighbor::new(nb, d)));
                }
            }
        }
        all_visited
    }

    fn robust_prune(&self, p: u32, candidates: Vec<Neighbor>, alpha: f32) -> Vec<u32> {
        robust_prune(self.data, self.metric, p, candidates, alpha, self.r)
    }

    /// One refinement step for node `id` (DiskANN Algorithm 1 body).
    fn refine(&self, id: u32, alpha: f32) {
        let q = self.data.row(id as usize);
        let mut visited = self.search_visited(q);
        // Merge current out-neighbors into the candidate pool.
        let current = self.adj[id as usize].lock().clone();
        for nb in current {
            visited.push(Neighbor::new(nb, self.dist(q, nb)));
        }
        let new_out = self.robust_prune(id, visited, alpha);
        *self.adj[id as usize].lock() = new_out.clone();

        // Insert back-edges. Overflowing nodes are allowed r/2 slack before
        // being re-pruned (amortizes the O(R·|C|) prune; the final build
        // pass in `VamanaGraph::build` restores the strict bound).
        for nb in new_out {
            let mut adj = self.adj[nb as usize].lock();
            if adj.contains(&id) {
                continue;
            }
            adj.push(id);
            if adj.len() > self.r + self.r / 2 {
                let nv = self.data.row(nb as usize);
                let cands: Vec<Neighbor> = adj
                    .iter()
                    .map(|&x| Neighbor::new(x, self.dist(nv, x)))
                    .collect();
                drop(adj);
                let pruned = self.robust_prune(nb, cands, alpha);
                *self.adj[nb as usize].lock() = pruned;
            }
        }
    }

    /// Restores the strict degree bound after the slack-tolerant passes.
    fn enforce_degree_bound(&self, alpha: f32, threads: usize) {
        crate::par::par_ranges(self.adj.len(), threads, |start, end| {
            for id in start..end {
                let adj = self.adj[id].lock().clone();
                if adj.len() <= self.r {
                    continue;
                }
                let v = self.data.row(id);
                let cands: Vec<Neighbor> = adj
                    .iter()
                    .map(|&x| Neighbor::new(x, self.dist(v, x)))
                    .collect();
                let pruned = self.robust_prune(id as u32, cands, alpha);
                *self.adj[id].lock() = pruned;
            }
        });
    }
}

/// Robust prune (DiskANN Algorithm 2): keeps at most `r` of `candidates`
/// as out-neighbors of `p`; after keeping a candidate `p*`, drops every
/// later candidate `p'` with `alpha * d(p*, p') <= d(p, p')`. Shared by the
/// static build and the streaming (FreshDiskANN-style) mutations.
pub(crate) fn robust_prune(
    data: &Dataset,
    metric: Metric,
    p: u32,
    mut candidates: Vec<Neighbor>,
    alpha: f32,
    r: usize,
) -> Vec<u32> {
    candidates.retain(|c| c.id != p);
    candidates.sort_unstable();
    // Sorting by (dist, id) can leave same-id entries non-adjacent when
    // stored dists differ; dedup via a seen-set instead.
    let mut seen = std::collections::BTreeSet::new();
    candidates.retain(|c| seen.insert(c.id));

    let mut kept: Vec<Neighbor> = Vec::with_capacity(r);
    let mut removed = vec![false; candidates.len()];
    for i in 0..candidates.len() {
        if removed[i] {
            continue;
        }
        let pstar = candidates[i];
        kept.push(pstar);
        if kept.len() >= r {
            break;
        }
        let pv = data.row(pstar.id as usize);
        for (j, cand) in candidates.iter().enumerate().skip(i + 1) {
            if removed[j] {
                continue;
            }
            let d_between = metric.distance(pv, data.row(cand.id as usize));
            if alpha * d_between <= cand.dist {
                removed[j] = true;
            }
        }
    }
    kept.into_iter().map(|n| n.id).collect()
}

/// The vector closest to the dataset mean (sampled scan for very large sets).
fn find_medoid(data: &Dataset) -> u32 {
    let dim = data.dim();
    let mut centroid = vec![0.0f32; dim];
    for row in data.iter() {
        for (acc, &x) in centroid.iter_mut().zip(row) {
            *acc += x;
        }
    }
    let inv = 1.0 / data.len() as f32;
    for x in centroid.iter_mut() {
        *x *= inv;
    }
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for (i, row) in data.iter().enumerate() {
        let d = sann_core::distance::l2_squared(&centroid, row);
        if d < best_d {
            best_d = d;
            best = i as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::recall::recall_at_k;
    use sann_datagen::{EmbeddingModel, GroundTruth};

    fn build_small(config: VamanaConfig) -> (Dataset, Dataset, GroundTruth, VamanaGraph) {
        let model = EmbeddingModel::new(48, 8, 77);
        let base = model.generate(2_000);
        let queries = model.generate_queries(30);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        let graph = VamanaGraph::build(&base, Metric::L2, config).unwrap();
        (base, queries, gt, graph)
    }

    fn graph_recall(
        base: &Dataset,
        queries: &Dataset,
        gt: &GroundTruth,
        graph: &VamanaGraph,
        l: usize,
    ) -> f64 {
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let (found, _) = graph.greedy_search(base, Metric::L2, q, l);
            let ids: Vec<u32> = found.iter().take(10).map(|n| n.id).collect();
            total += recall_at_k(gt.neighbors(i), &ids, 10);
        }
        total / queries.len() as f64
    }

    #[test]
    fn degree_bound_holds() {
        let config = VamanaConfig {
            r: 24,
            ..VamanaConfig::default()
        };
        let (_, _, _, graph) = build_small(config);
        for id in 0..graph.len() as u32 {
            assert!(
                graph.neighbors(id).len() <= 24,
                "degree bound violated at {id}"
            );
        }
    }

    #[test]
    fn greedy_search_reaches_high_recall() {
        let (base, queries, gt, graph) = build_small(VamanaConfig {
            r: 32,
            ..VamanaConfig::default()
        });
        let recall = graph_recall(&base, &queries, &gt, &graph, 50);
        assert!(recall > 0.9, "recall {recall} too low");
    }

    #[test]
    fn alpha_reduces_hops_vs_plain_rng() {
        // The DESIGN.md ablation: alpha > 1 keeps long edges, shortening
        // search paths (fewer distance evaluations to converge).
        let plain = VamanaConfig {
            alpha: 1.0,
            r: 32,
            threads: 1,
            ..VamanaConfig::default()
        };
        let slack = VamanaConfig {
            alpha: 1.3,
            r: 32,
            threads: 1,
            ..VamanaConfig::default()
        };
        let (base, queries, gt, g_plain) = build_small(plain);
        let (_, _, _, g_slack) = build_small(slack);
        let r_plain = graph_recall(&base, &queries, &gt, &g_plain, 50);
        let r_slack = graph_recall(&base, &queries, &gt, &g_slack, 50);
        assert!(
            r_slack >= r_plain - 0.05,
            "alpha-pruned graph should not lose recall: {r_slack} vs {r_plain}"
        );
    }

    #[test]
    fn medoid_is_central() {
        let (base, _, _, graph) = build_small(VamanaConfig::default());
        // The medoid's mean distance to 100 sampled points must be below the
        // dataset-wide average pairwise distance.
        let m = base.row(graph.medoid() as usize);
        let mean_from_medoid: f32 = (0..100)
            .map(|i| Metric::L2.distance(m, base.row(i * 7)))
            .sum::<f32>()
            / 100.0;
        let mean_pairwise: f32 = (0..100)
            .map(|i| Metric::L2.distance(base.row(i), base.row(i * 7 % base.len())))
            .sum::<f32>()
            / 100.0;
        assert!(mean_from_medoid <= mean_pairwise * 1.1);
    }

    #[test]
    fn deterministic_single_threaded() {
        let config = VamanaConfig {
            threads: 1,
            ..VamanaConfig::default()
        };
        let (_, _, _, a) = build_small(config);
        let (_, _, _, b) = build_small(config);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_invalid_config() {
        let data = EmbeddingModel::new(8, 2, 1).generate(10);
        assert!(VamanaGraph::build(
            &data,
            Metric::L2,
            VamanaConfig {
                r: 0,
                ..VamanaConfig::default()
            }
        )
        .is_err());
        assert!(VamanaGraph::build(
            &data,
            Metric::L2,
            VamanaConfig {
                alpha: 0.5,
                ..VamanaConfig::default()
            }
        )
        .is_err());
        assert!(
            VamanaGraph::build(&Dataset::with_dim(8), Metric::L2, VamanaConfig::default()).is_err()
        );
    }

    #[test]
    fn graph_is_connected_enough_to_find_self() {
        let (base, _, _, graph) = build_small(VamanaConfig::default());
        let mut found_self = 0;
        for i in (0..base.len()).step_by(97) {
            let (found, _) = graph.greedy_search(&base, Metric::L2, base.row(i), 20);
            if found.first().map(|n| n.id) == Some(i as u32) {
                found_self += 1;
            }
        }
        let total = (0..base.len()).step_by(97).count();
        assert!(
            found_self >= total * 9 / 10,
            "{found_self}/{total} self-lookups succeeded"
        );
    }
}
