//! FreshDiskANN-style streaming mutations (Singh et al., 2021) — the
//! hybrid-workload substrate the paper's §VIII leaves to future work.
//!
//! [`FreshDiskAnnIndex`] is a DiskANN index that additionally supports
//! **in-place inserts** (greedy search → robust prune → back-edges, with the
//! modified node records written back to the device), **lazy deletes**
//! (tombstones filtered from results), and **consolidation** (the
//! FreshDiskANN delete-repair pass that reroutes edges around tombstoned
//! nodes). Insert operations return a [`QueryTrace`] containing both the
//! reads of the placement search and the *writes* of the dirtied node
//! records, so the execution engine can replay realistic read-write mixes.

use crate::layout::DiskLayout;
use crate::trace::{QueryTrace, SearchOutput, TraceStep};
use crate::vamana::{robust_prune, VamanaConfig, VamanaGraph};
use crate::{SearchParams, VectorIndex};
use sann_core::{Dataset, Error, Metric, Neighbor, Result, TopK};
use sann_quant::ProductQuantizer;

/// Build-time configuration for [`FreshDiskAnnIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreshConfig {
    /// Static Vamana parameters, also used for insert-time pruning.
    pub graph: VamanaConfig,
    /// Insert-time placement search list length.
    pub l_insert: usize,
    /// PQ sub-spaces (0 = `dim / 8`, as in [`crate::DiskAnnConfig`]).
    pub pq_m: usize,
    /// PQ centroids per sub-space.
    pub pq_ksub: usize,
}

impl Default for FreshConfig {
    fn default() -> Self {
        FreshConfig {
            graph: VamanaConfig::default(),
            l_insert: 75,
            pq_m: 0,
            pq_ksub: 256,
        }
    }
}

/// A mutable DiskANN index.
pub struct FreshDiskAnnIndex {
    data: Dataset,
    metric: Metric,
    /// Out-adjacency, mutated by inserts/deletes.
    adj: Vec<Vec<u32>>,
    medoid: u32,
    deleted: Vec<bool>,
    live: usize,
    pq: ProductQuantizer,
    codes: Vec<u8>,
    config: FreshConfig,
    r: usize,
    node_bytes: u64,
    /// Device writes of the most recent insert, until taken.
    pending_writes: Vec<crate::IoReq>,
}

impl std::fmt::Debug for FreshDiskAnnIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FreshDiskAnnIndex")
            .field("len", &self.data.len())
            .field("live", &self.live)
            .field("dim", &self.data.dim())
            .finish()
    }
}

impl FreshDiskAnnIndex {
    /// Builds from an initial dataset. PQ codebooks are trained once here
    /// and frozen; later inserts are encoded with the same codebooks
    /// (FreshDiskANN's approach).
    ///
    /// # Errors
    ///
    /// Propagates graph and PQ build errors.
    pub fn build(data: &Dataset, metric: Metric, config: FreshConfig) -> Result<FreshDiskAnnIndex> {
        let dim = data.dim();
        let pq_m = if config.pq_m == 0 {
            let target = (dim / 8).max(1);
            (1..=target)
                .rev()
                .find(|&m| dim.is_multiple_of(m))
                .unwrap_or(1)
        } else {
            config.pq_m
        };
        let graph = VamanaGraph::build(data, metric, config.graph)?;
        let ksub = config
            .pq_ksub
            .min(data.len().saturating_sub(1))
            .clamp(2, 256);
        let pq = ProductQuantizer::train(data, pq_m, ksub, config.graph.seed ^ 0xF8E5)?;
        let codes = pq.encode_all(data);
        let r = graph.r();
        let adj = (0..data.len() as u32)
            .map(|i| graph.neighbors(i).to_vec())
            .collect();
        let node_bytes = (dim * 4 + 4 + r * 4) as u64;
        Ok(FreshDiskAnnIndex {
            data: data.clone(),
            metric,
            adj,
            medoid: graph.medoid(),
            deleted: vec![false; data.len()],
            live: data.len(),
            pq,
            codes,
            config,
            r,
            node_bytes,
            pending_writes: Vec::new(),
        })
    }

    /// Total slots (including tombstones).
    pub fn slots(&self) -> usize {
        self.data.len()
    }

    /// Live (non-deleted) vectors.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// The current device layout (grows as inserts append records).
    pub fn layout(&self) -> DiskLayout {
        DiskLayout::new(self.data.len() as u64, self.node_bytes, 0)
    }

    /// Inserts a vector, returning its id and the trace of the operation:
    /// the placement search's reads plus the writes of every node record the
    /// insert dirtied (the new node and its back-edge targets).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on a wrong-sized vector.
    pub fn insert(&mut self, vector: &[f32]) -> Result<(u32, QueryTrace)> {
        if vector.len() != self.data.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.data.dim(),
                actual: vector.len(),
            });
        }
        let mut trace = QueryTrace::new();
        // Placement search: beam over the graph, reads as in a query.
        let (visited, read_steps) = self.placement_search(vector)?;
        trace.steps.extend(read_steps);

        let id = self.data.len() as u32;
        self.data.push(vector)?;
        self.deleted.push(false);
        self.live += 1;
        self.codes.extend_from_slice(&self.pq.encode(vector));

        let alpha = self.config.graph.alpha;
        let out = robust_prune(&self.data, self.metric, id, visited, alpha, self.r);
        trace.push_compute((out.len() * self.r) as u64, self.data.dim() as u32);
        self.adj.push(out.clone());

        // Write the new record plus every dirtied in-neighbor record.
        let layout = self.layout();
        let mut writes = Vec::new();
        writes.extend(layout.node_reqs(id as u64, sann_obs::IoProvenance::GraphAdjacency)?);
        for nb in out {
            let adj = &mut self.adj[nb as usize];
            if !adj.contains(&id) {
                adj.push(id);
                if adj.len() > self.r + self.r / 2 {
                    let nv = self.data.row(nb as usize);
                    let cands: Vec<Neighbor> = adj
                        .iter()
                        .map(|&x| {
                            Neighbor::new(x, self.metric.distance(nv, self.data.row(x as usize)))
                        })
                        .collect();
                    self.adj[nb as usize] =
                        robust_prune(&self.data, self.metric, nb, cands, alpha, self.r);
                }
                writes.extend(layout.node_reqs(nb as u64, sann_obs::IoProvenance::GraphAdjacency)?);
            }
        }
        // Traces carry read/compute work; the dirtied records are exposed
        // separately so callers can build `Segment::write` batches from them.
        self.pending_writes = writes;
        Ok((id, trace))
    }

    /// The device writes performed by the most recent [`insert`]
    /// (new + dirtied node records). Consumed by the caller.
    pub fn take_insert_writes(&mut self) -> Vec<crate::IoReq> {
        std::mem::take(&mut self.pending_writes)
    }

    /// Tombstones a vector: it vanishes from results immediately but keeps
    /// routing traffic until [`consolidate`](FreshDiskAnnIndex::consolidate).
    ///
    /// # Errors
    ///
    /// Returns [`Error::IdOutOfBounds`] for unknown ids and
    /// [`Error::NotFound`] for already-deleted ones.
    pub fn delete(&mut self, id: u32) -> Result<()> {
        let slot = self
            .deleted
            .get_mut(id as usize)
            .ok_or(Error::IdOutOfBounds {
                id: id as u64,
                len: self.adj.len() as u64,
            })?;
        if *slot {
            return Err(Error::NotFound(format!("vector {id} already deleted")));
        }
        *slot = true;
        self.live -= 1;
        Ok(())
    }

    /// FreshDiskANN's delete-consolidation pass: every node that points at a
    /// tombstone re-routes through the tombstone's out-neighbors and is
    /// re-pruned. Returns the number of nodes repaired.
    pub fn consolidate(&mut self) -> usize {
        let alpha = self.config.graph.alpha;
        let mut repaired = 0usize;
        for p in 0..self.adj.len() {
            if self.deleted[p] {
                continue;
            }
            let has_dead = self.adj[p].iter().any(|&n| self.deleted[n as usize]);
            if !has_dead {
                continue;
            }
            let pv = self.data.row(p);
            let mut cands: Vec<Neighbor> = Vec::new();
            for &n in &self.adj[p] {
                if self.deleted[n as usize] {
                    for &nn in &self.adj[n as usize] {
                        if !self.deleted[nn as usize] && nn as usize != p {
                            cands.push(Neighbor::new(
                                nn,
                                self.metric.distance(pv, self.data.row(nn as usize)),
                            ));
                        }
                    }
                } else {
                    cands.push(Neighbor::new(
                        n,
                        self.metric.distance(pv, self.data.row(n as usize)),
                    ));
                }
            }
            self.adj[p] = robust_prune(&self.data, self.metric, p as u32, cands, alpha, self.r);
            repaired += 1;
        }
        // Make sure the medoid survives.
        if self.deleted[self.medoid as usize] {
            if let Some(alive) = (0..self.deleted.len()).find(|&i| !self.deleted[i]) {
                self.medoid = alive as u32;
            }
        }
        repaired
    }

    /// Beam placement search used by inserts: returns the visited set (with
    /// distances) and the read steps performed.
    ///
    /// # Errors
    ///
    /// Propagates layout errors for out-of-range graph edges.
    fn placement_search(&self, query: &[f32]) -> Result<(Vec<Neighbor>, Vec<TraceStep>)> {
        let l = self.config.l_insert.max(8);
        let w = 4usize;
        let layout = self.layout();
        let mut steps = Vec::new();
        let mut seen = vec![false; self.adj.len()];
        let mut visited: Vec<Neighbor> = Vec::new();
        let start = self.medoid;
        seen[start as usize] = true;
        let table = self.pq.distance_table(query);
        let mut cands: Vec<(f32, u32, bool)> =
            vec![(table.distance_at(&self.codes, start as usize), start, false)];
        loop {
            let mut frontier = Vec::with_capacity(w);
            for c in cands.iter_mut().take(l) {
                if !c.2 {
                    c.2 = true;
                    frontier.push(c.1);
                    if frontier.len() == w {
                        break;
                    }
                }
            }
            if frontier.is_empty() {
                break;
            }
            let mut reqs = Vec::new();
            for &id in &frontier {
                reqs.extend(layout.node_reqs(id as u64, sann_obs::IoProvenance::GraphAdjacency)?);
            }
            steps.push(TraceStep::Read { reqs });
            for &id in &frontier {
                visited.push(Neighbor::new(
                    id,
                    self.metric.distance(query, self.data.row(id as usize)),
                ));
                for &nb in &self.adj[id as usize] {
                    if std::mem::replace(&mut seen[nb as usize], true) {
                        continue;
                    }
                    let d = table.distance_at(&self.codes, nb as usize);
                    let pos = cands.partition_point(|x| x.0 <= d);
                    cands.insert(pos, (d, nb, false));
                    if cands.len() > l + l / 2 + 1 {
                        cands.truncate(l + l / 2 + 1);
                    }
                }
            }
        }
        Ok((visited, steps))
    }
}

impl VectorIndex for FreshDiskAnnIndex {
    fn len(&self) -> usize {
        self.live
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn kind(&self) -> &'static str {
        "fresh-diskann"
    }

    fn is_storage_based(&self) -> bool {
        true
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        if query.len() != self.data.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.data.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let l = params.search_list.max(k);
        let w = params.beam_width.max(1);
        let layout = self.layout();
        let mut trace = QueryTrace::new();
        let table = self.pq.distance_table(query);
        trace.push_compute(self.pq.ksub() as u64, self.data.dim() as u32);

        let mut seen = vec![false; self.adj.len()];
        let start = self.medoid;
        seen[start as usize] = true;
        let mut cands: Vec<(f32, u32, bool)> =
            vec![(table.distance_at(&self.codes, start as usize), start, false)];
        trace.push_pq_lookup(1, self.pq.m() as u32);
        let mut exact = TopK::new(l.max(k));

        loop {
            let mut frontier = Vec::with_capacity(w);
            for c in cands.iter_mut().take(l) {
                if !c.2 {
                    c.2 = true;
                    frontier.push(c.1);
                    if frontier.len() == w {
                        break;
                    }
                }
            }
            if frontier.is_empty() {
                break;
            }
            let mut reqs = Vec::new();
            for &id in &frontier {
                reqs.extend(layout.node_reqs(id as u64, sann_obs::IoProvenance::GraphAdjacency)?);
            }
            trace.push_read(reqs);
            let mut lookups = 0u64;
            for &id in &frontier {
                let exact_d = self.metric.distance(query, self.data.row(id as usize));
                // Tombstoned nodes route but never land in results.
                if !self.deleted[id as usize] {
                    exact.push(id, exact_d);
                }
                for &nb in &self.adj[id as usize] {
                    if std::mem::replace(&mut seen[nb as usize], true) {
                        continue;
                    }
                    let d = table.distance_at(&self.codes, nb as usize);
                    lookups += 1;
                    let pos = cands.partition_point(|x| x.0 <= d);
                    cands.insert(pos, (d, nb, false));
                    if cands.len() > l + l / 2 + 1 {
                        cands.truncate(l + l / 2 + 1);
                    }
                }
            }
            trace.push_compute(frontier.len() as u64, self.data.dim() as u32);
            trace.push_pq_lookup(lookups, self.pq.m() as u32);
        }

        let mut neighbors = exact.into_sorted_vec();
        neighbors.truncate(k);
        Ok(SearchOutput { neighbors, trace })
    }

    fn memory_bytes(&self) -> u64 {
        self.codes.len() as u64
    }

    fn storage_bytes(&self) -> u64 {
        self.layout().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::recall::recall_at_k;
    use sann_datagen::{EmbeddingModel, GroundTruth};

    fn config() -> FreshConfig {
        FreshConfig {
            graph: VamanaConfig {
                r: 24,
                l_build: 50,
                ..Default::default()
            },
            l_insert: 50,
            pq_m: 16,
            pq_ksub: 64,
        }
    }

    fn build_small(n: usize) -> (Dataset, Dataset, FreshDiskAnnIndex) {
        let model = EmbeddingModel::new(64, 8, 321);
        let base = model.generate(n);
        let queries = model.generate_queries(25);
        let index = FreshDiskAnnIndex::build(&base, Metric::L2, config()).unwrap();
        (base, queries, index)
    }

    #[test]
    fn searches_like_static_diskann() {
        let (base, queries, index) = build_small(2_000);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        let params = SearchParams::default().with_search_list(40);
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let out = index.search(q, 10, &params).unwrap();
            total += recall_at_k(gt.neighbors(i), &out.ids(), 10);
        }
        assert!(total / 25.0 > 0.9, "recall {}", total / 25.0);
    }

    #[test]
    fn inserted_vectors_become_findable() {
        let (_, _, mut index) = build_small(1_000);
        let model = EmbeddingModel::new(64, 8, 555);
        let fresh = model.generate_stream(20, 7);
        for row in fresh.iter() {
            let (id, trace) = index.insert(row).unwrap();
            assert!(trace.io_count() > 0, "placement search must read");
            let writes = index.take_insert_writes();
            assert!(!writes.is_empty(), "insert must dirty node records");
            let out = index
                .search(row, 1, &SearchParams::default().with_search_list(40))
                .unwrap();
            assert_eq!(out.neighbors[0].id, id, "fresh insert must be its own NN");
        }
        assert_eq!(index.live_len(), 1_020);
    }

    #[test]
    fn deleted_vectors_leave_results_immediately() {
        let (base, _, mut index) = build_small(1_000);
        let q = base.row(123).to_vec();
        let before = index
            .search(&q, 1, &SearchParams::default().with_search_list(40))
            .unwrap();
        assert_eq!(before.neighbors[0].id, 123);
        index.delete(123).unwrap();
        let after = index
            .search(&q, 5, &SearchParams::default().with_search_list(40))
            .unwrap();
        assert!(after.neighbors.iter().all(|n| n.id != 123));
        assert!(index.delete(123).is_err(), "double delete");
        assert!(index.delete(9999).is_err(), "unknown id");
    }

    #[test]
    fn consolidation_repairs_routing_after_mass_delete() {
        let (base, queries, mut index) = build_small(2_000);
        // Delete 30% of the dataset.
        for id in (0..2_000u32).step_by(3) {
            index.delete(id).unwrap();
        }
        let repaired = index.consolidate();
        assert!(
            repaired > 0,
            "consolidation must repair in-edges of tombstones"
        );
        // Recall against the surviving ground truth stays high.
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 30);
        let params = SearchParams::default().with_search_list(60);
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let out = index.search(q, 10, &params).unwrap();
            let truth: Vec<u32> = gt
                .neighbors(i)
                .iter()
                .copied()
                .filter(|&t| !t.is_multiple_of(3))
                .take(10)
                .collect();
            total += recall_at_k(&truth, &out.ids(), 10);
        }
        assert!(
            total / 25.0 > 0.85,
            "post-consolidation recall {}",
            total / 25.0
        );
    }

    #[test]
    fn insert_grows_storage() {
        let (_, _, mut index) = build_small(1_000);
        let before = index.storage_bytes();
        let model = EmbeddingModel::new(64, 8, 777);
        let fresh = model.generate_stream(64, 9);
        for row in fresh.iter() {
            index.insert(row).unwrap();
            index.take_insert_writes();
        }
        assert!(index.storage_bytes() > before);
        assert_eq!(index.slots(), 1_064);
    }
}
