//! IVF (inverted file) indexes: memory-based IVF-Flat and the storage-based
//! IVF-PQ layout used by LanceDB in the paper.
//!
//! Build-time parameter `nlist` (number of K-means clusters) and search-time
//! parameter `nprobe` (clusters scanned per query) follow the paper's §II-B:
//! the query is compared against every centroid, the `nprobe` nearest
//! clusters are selected, and all vectors in those clusters are scored.

use crate::layout::range_reqs;
use crate::trace::{QueryTrace, SearchOutput};
use crate::{SearchParams, VectorIndex};
use sann_core::buf::{ByteReader, ByteWriter};
use sann_core::{Dataset, Error, Metric, Result, TopK};
use sann_quant::{KMeans, KMeansModel, ProductQuantizer};

/// Build-time configuration for IVF indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of clusters. The paper follows the faiss guideline
    /// `nlist = 4 * sqrt(n)`; [`IvfConfig::nlist_for`] computes that.
    pub nlist: usize,
    /// K-means training sample cap (build cost control).
    pub train_sample: usize,
    /// K-means iterations.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            nlist: 1024,
            train_sample: 100_000,
            kmeans_iters: 12,
            seed: 0x11F,
        }
    }
}

impl IvfConfig {
    /// The faiss guideline the paper uses: `nlist = 4 * sqrt(n)`.
    pub fn nlist_for(n: usize) -> usize {
        ((4.0 * (n as f64).sqrt()) as usize).max(1)
    }

    /// Returns a copy with `nlist` set.
    pub fn with_nlist(mut self, nlist: usize) -> Self {
        self.nlist = nlist;
        self
    }
}

/// Memory-based IVF-Flat index (the paper's Milvus-IVF setup).
#[derive(Debug)]
pub struct IvfIndex {
    data: Dataset,
    metric: Metric,
    kmeans: KMeansModel,
    lists: Vec<Vec<u32>>,
}

impl IvfIndex {
    /// Builds the index: K-means clustering plus inverted lists.
    ///
    /// # Errors
    ///
    /// Propagates clustering errors (empty dataset, `nlist > n`).
    pub fn build(data: &Dataset, metric: Metric, config: IvfConfig) -> Result<IvfIndex> {
        let nlist = config.nlist.min(data.len().max(1));
        let kmeans = KMeans::new(nlist)
            .with_seed(config.seed)
            .with_sample_limit(config.train_sample)
            .with_max_iters(config.kmeans_iters)
            .fit(data)?;
        let lists = lists_from_assignments(&kmeans.assignments, nlist);
        Ok(IvfIndex {
            data: data.clone(),
            metric,
            kmeans,
            lists,
        })
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Sizes of the inverted lists (diagnostics).
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(Vec::len).collect()
    }

    pub(crate) fn persist_payload(&self, w: &mut ByteWriter) {
        w.put_u8(self.metric.tag());
        self.data.encode_into(w);
        self.kmeans.encode_into(w);
    }

    pub(crate) fn from_persist(r: &mut ByteReader<'_>) -> Result<IvfIndex> {
        let metric = Metric::from_tag(r.get_u8()?)
            .ok_or_else(|| Error::Corrupt("ivf: unknown metric tag".into()))?;
        let data = Dataset::decode_from(r)?;
        let kmeans = KMeansModel::decode_from(r)?;
        if kmeans.assignments.len() != data.len() {
            return Err(Error::Corrupt("ivf: assignment count mismatch".into()));
        }
        let lists = lists_from_assignments(&kmeans.assignments, kmeans.centroids.len());
        Ok(IvfIndex {
            data,
            metric,
            kmeans,
            lists,
        })
    }
}

/// Rebuilds the inverted lists from k-means assignments (ids in id order per
/// list, exactly as the build path produces them).
fn lists_from_assignments(assignments: &[u32], nlist: usize) -> Vec<Vec<u32>> {
    let mut lists = vec![Vec::new(); nlist];
    for (id, &c) in assignments.iter().enumerate() {
        lists[c as usize].push(id as u32);
    }
    lists
}

impl VectorIndex for IvfIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn kind(&self) -> &'static str {
        "ivf"
    }

    fn is_storage_based(&self) -> bool {
        false
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        validate_query(query, self.data.dim(), k)?;
        let nprobe = params.nprobe.clamp(1, self.lists.len());
        let mut trace = QueryTrace::new();

        // Stage 1: rank centroids.
        let probes = self.kmeans.nearest_n(query, nprobe);
        trace.push_compute(self.nlist() as u64, self.data.dim() as u32);

        // Stage 2: scan the selected posting lists.
        let mut topk = TopK::new(k);
        let mut scanned = 0u64;
        for &c in &probes {
            for &id in &self.lists[c as usize] {
                topk.push(id, self.metric.distance(query, self.data.row(id as usize)));
            }
            scanned += self.lists[c as usize].len() as u64;
        }
        trace.push_compute(scanned, self.data.dim() as u32);
        Ok(SearchOutput {
            neighbors: topk.into_sorted_vec(),
            trace,
        })
    }

    fn memory_bytes(&self) -> u64 {
        let vectors = (self.data.len() * self.data.row_bytes()) as u64;
        let centroids = (self.kmeans.centroids.len() * self.kmeans.centroids.row_bytes()) as u64;
        let lists = 4 * self.data.len() as u64;
        vectors + centroids + lists
    }

    fn storage_bytes(&self) -> u64 {
        0
    }

    fn persist_encode(&self) -> Option<Vec<u8>> {
        Some(crate::persist::frame(self.kind(), |w| {
            self.persist_payload(w)
        }))
    }
}

/// Storage-based IVF with product quantization (the paper's LanceDB-IVF
/// setup): centroids stay in memory, product-quantized posting lists live on
/// the simulated device and are read sequentially at query time.
///
/// Matching LanceDB's behaviour in the paper, results are ranked by ADC
/// distance without a full-precision rerank — which is why this setup tops
/// out at lower recall (Table II reports 0.64–0.73).
#[derive(Debug)]
pub struct IvfPqIndex {
    dim: usize,
    kmeans: KMeansModel,
    pq: ProductQuantizer,
    /// Per-list vector ids.
    lists: Vec<Vec<u32>>,
    /// Per-list PQ codes, parallel to `lists`.
    codes: Vec<Vec<u8>>,
    /// Byte offset of each posting list on the device.
    list_offsets: Vec<u64>,
    /// Bytes of each posting list on the device.
    list_bytes: Vec<u64>,
    total_storage: u64,
}

impl IvfPqIndex {
    /// Builds the index: K-means + PQ training + on-device posting lists.
    ///
    /// `pq_m` must divide the dataset dimensionality.
    ///
    /// # Errors
    ///
    /// Propagates clustering/PQ training errors.
    pub fn build(
        data: &Dataset,
        config: IvfConfig,
        pq_m: usize,
        pq_ksub: usize,
    ) -> Result<IvfPqIndex> {
        let nlist = config.nlist.min(data.len().max(1));
        let kmeans = KMeans::new(nlist)
            .with_seed(config.seed)
            .with_sample_limit(config.train_sample)
            .with_max_iters(config.kmeans_iters)
            .fit(data)?;
        let pq = ProductQuantizer::train(data, pq_m, pq_ksub, config.seed ^ 0x9AF1)?;
        let lists = lists_from_assignments(&kmeans.assignments, nlist);
        let mut codes = Vec::with_capacity(nlist);
        for list in &lists {
            let mut c = Vec::with_capacity(list.len() * pq.code_bytes());
            for &id in list {
                c.extend_from_slice(&pq.encode(data.row(id as usize)));
            }
            codes.push(c);
        }
        Ok(IvfPqIndex::assemble(data.dim(), kmeans, pq, lists, codes))
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Computes the on-device placement of the posting lists (stored back to
    /// back, each starting on a sector boundary) and assembles the index.
    fn assemble(
        dim: usize,
        kmeans: KMeansModel,
        pq: ProductQuantizer,
        lists: Vec<Vec<u32>>,
        codes: Vec<Vec<u8>>,
    ) -> IvfPqIndex {
        let entry_bytes = 4 + pq.code_bytes() as u64; // id + code
        let mut list_offsets = Vec::with_capacity(lists.len());
        let mut list_bytes = Vec::with_capacity(lists.len());
        let mut offset = 0u64;
        for list in &lists {
            let bytes = list.len() as u64 * entry_bytes;
            list_offsets.push(offset);
            list_bytes.push(bytes);
            offset += bytes.div_ceil(crate::layout::SECTOR_BYTES) * crate::layout::SECTOR_BYTES;
        }
        IvfPqIndex {
            dim,
            kmeans,
            pq,
            lists,
            codes,
            list_offsets,
            list_bytes,
            total_storage: offset,
        }
    }

    pub(crate) fn persist_payload(&self, w: &mut ByteWriter) {
        w.put_u32_le(self.dim as u32);
        self.kmeans.encode_into(w);
        self.pq.encode_into(w);
        for codes in &self.codes {
            w.put_u64_le(codes.len() as u64);
            w.put_slice(codes);
        }
    }

    pub(crate) fn from_persist(r: &mut ByteReader<'_>) -> Result<IvfPqIndex> {
        let dim = r.get_u32_le()? as usize;
        let kmeans = KMeansModel::decode_from(r)?;
        let pq = ProductQuantizer::decode_from(r)?;
        if pq.dim() != dim || kmeans.centroids.dim() != dim {
            return Err(Error::Corrupt("ivf-pq: dimension mismatch".into()));
        }
        let lists = lists_from_assignments(&kmeans.assignments, kmeans.centroids.len());
        let mut codes = Vec::with_capacity(lists.len());
        for list in &lists {
            let len = r.get_u64_le()? as usize;
            if len != list.len() * pq.code_bytes() {
                return Err(Error::Corrupt("ivf-pq: code block length mismatch".into()));
            }
            codes.push(r.take(len)?.to_vec());
        }
        Ok(IvfPqIndex::assemble(dim, kmeans, pq, lists, codes))
    }
}

impl VectorIndex for IvfPqIndex {
    fn len(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn kind(&self) -> &'static str {
        "ivf-pq"
    }

    fn is_storage_based(&self) -> bool {
        true
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        validate_query(query, self.dim, k)?;
        let nprobe = params.nprobe.clamp(1, self.lists.len());
        let mut trace = QueryTrace::new();

        let probes = self.kmeans.nearest_n(query, nprobe);
        trace.push_compute(self.nlist() as u64, self.dim as u32);

        // Building the ADC table costs ksub * m sub-distance evaluations,
        // equivalent to ksub full-dimension distances.
        let table = self.pq.distance_table(query);
        trace.push_compute(self.pq.ksub() as u64, self.dim as u32);

        let mut topk = TopK::new(k);
        for &c in &probes {
            let c = c as usize;
            // Read the posting list from the device (sequential requests).
            // IVF-PQ posting lists hold (id + PQ code) entries.
            trace.push_read(range_reqs(
                self.list_offsets[c],
                self.list_bytes[c],
                sann_obs::IoProvenance::PqCodes,
            ));
            let list = &self.lists[c];
            for (i, &id) in list.iter().enumerate() {
                topk.push(id, table.distance_at(&self.codes[c], i));
            }
            trace.push_pq_lookup(list.len() as u64, self.pq.m() as u32);
        }
        Ok(SearchOutput {
            neighbors: topk.into_sorted_vec(),
            trace,
        })
    }

    fn memory_bytes(&self) -> u64 {
        // Centroids only; codes live on the device.
        (self.kmeans.centroids.len() * self.kmeans.centroids.row_bytes()) as u64
    }

    fn storage_bytes(&self) -> u64 {
        self.total_storage
    }

    fn persist_encode(&self) -> Option<Vec<u8>> {
        Some(crate::persist::frame(self.kind(), |w| {
            self.persist_payload(w)
        }))
    }
}

fn validate_query(query: &[f32], dim: usize, k: usize) -> Result<()> {
    if query.len() != dim {
        return Err(Error::DimensionMismatch {
            expected: dim,
            actual: query.len(),
        });
    }
    if k == 0 {
        return Err(Error::invalid_parameter("k", "must be positive"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::recall::recall_at_k;
    use sann_datagen::{EmbeddingModel, GroundTruth};

    fn setup() -> (Dataset, Dataset, GroundTruth) {
        let model = EmbeddingModel::new(48, 12, 21);
        let base = model.generate(3_000);
        let queries = model.generate_queries(30);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        (base, queries, gt)
    }

    #[test]
    fn ivf_flat_reaches_high_recall_with_enough_probes() {
        let (base, queries, gt) = setup();
        let config = IvfConfig::default().with_nlist(IvfConfig::nlist_for(base.len()));
        let index = IvfIndex::build(&base, Metric::L2, config).unwrap();
        let params = SearchParams::default().with_nprobe(40);
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let out = index.search(q, 10, &params).unwrap();
            total += recall_at_k(gt.neighbors(i), &out.ids(), 10);
        }
        let recall = total / queries.len() as f64;
        assert!(recall > 0.9, "recall {recall} too low");
    }

    #[test]
    fn more_probes_cannot_reduce_recall() {
        let (base, queries, gt) = setup();
        let index =
            IvfIndex::build(&base, Metric::L2, IvfConfig::default().with_nlist(64)).unwrap();
        let mut last = 0.0;
        for nprobe in [1, 4, 16, 64] {
            let params = SearchParams::default().with_nprobe(nprobe);
            let mut total = 0.0;
            for (i, q) in queries.iter().enumerate() {
                let out = index.search(q, 10, &params).unwrap();
                total += recall_at_k(gt.neighbors(i), &out.ids(), 10);
            }
            let recall = total / queries.len() as f64;
            assert!(
                recall >= last - 1e-9,
                "recall decreased: {last} -> {recall}"
            );
            last = recall;
        }
        assert!((last - 1.0).abs() < 1e-9, "nprobe == nlist must be exact");
    }

    #[test]
    fn ivf_trace_counts_probed_fraction() {
        let (base, queries, _) = setup();
        let index =
            IvfIndex::build(&base, Metric::L2, IvfConfig::default().with_nlist(100)).unwrap();
        let out = index
            .search(queries.row(0), 10, &SearchParams::default().with_nprobe(10))
            .unwrap();
        // Scanned vectors should be roughly nprobe/nlist of the dataset.
        let scanned = out.trace.compute_count() - 100; // minus centroid stage
        assert!(scanned > 0);
        assert!(
            (scanned as f64) < 0.6 * base.len() as f64,
            "scanned {scanned} of {}",
            base.len()
        );
        assert_eq!(out.trace.io_count(), 0, "memory index must not issue I/O");
    }

    #[test]
    fn ivf_pq_issues_sequential_reads() {
        let (base, queries, _) = setup();
        let config = IvfConfig::default().with_nlist(50);
        let index = IvfPqIndex::build(&base, config, 8, 64).unwrap();
        assert!(index.is_storage_based());
        let out = index
            .search(queries.row(0), 10, &SearchParams::default().with_nprobe(5))
            .unwrap();
        assert_eq!(out.trace.hops(), 5, "one read beam per probed list");
        assert!(out.trace.read_bytes() >= 5 * 4096);
        assert!(out.trace.pq_lookup_count() > 0);
        assert_eq!(index.len(), base.len());
    }

    #[test]
    fn ivf_pq_recall_is_lower_than_flat() {
        // PQ without rerank loses recall — the effect the paper reports for
        // LanceDB-IVF (0.64–0.73 vs 0.9 target).
        let (base, queries, gt) = setup();
        let config = IvfConfig::default().with_nlist(50);
        let flat = IvfIndex::build(&base, Metric::L2, config).unwrap();
        let pq = IvfPqIndex::build(&base, config, 16, 64).unwrap();
        let params = SearchParams::default().with_nprobe(50); // exhaustive probes
        let (mut r_flat, mut r_pq) = (0.0, 0.0);
        for (i, q) in queries.iter().enumerate() {
            r_flat += recall_at_k(
                gt.neighbors(i),
                &flat.search(q, 10, &params).unwrap().ids(),
                10,
            );
            r_pq += recall_at_k(
                gt.neighbors(i),
                &pq.search(q, 10, &params).unwrap().ids(),
                10,
            );
        }
        assert!(r_flat > r_pq, "flat {r_flat} should beat pq {r_pq}");
        assert!(r_pq / queries.len() as f64 > 0.3, "pq recall collapsed");
    }

    #[test]
    fn nlist_guideline_matches_faiss() {
        assert_eq!(IvfConfig::nlist_for(1_000_000), 4_000);
        assert_eq!(IvfConfig::nlist_for(10_000_000), 12_649);
    }

    #[test]
    fn memory_accounting_differs_by_placement() {
        let (base, _, _) = setup();
        let config = IvfConfig::default().with_nlist(50);
        let flat = IvfIndex::build(&base, Metric::L2, config).unwrap();
        let pq = IvfPqIndex::build(&base, config, 16, 64).unwrap();
        assert!(flat.memory_bytes() > pq.memory_bytes());
        assert_eq!(flat.storage_bytes(), 0);
        assert!(pq.storage_bytes() > 0);
    }
}
