//! HNSW over scalar-quantized vectors — the paper's LanceDB-HNSW setup
//! ("HNSW index with scalar quantization", §III-C).
//!
//! The graph is a regular HNSW build over the full-precision vectors; at
//! query time distances are computed *asymmetrically* against the u8 codes.
//! Quantization error costs recall, which is why the paper tunes LanceDB's
//! `efSearch` higher than the other databases' for the same target (the
//! `efSearch (LanceDB)` column of Table II).

use crate::hnsw::{HnswConfig, HnswIndex};
use crate::trace::{QueryTrace, SearchOutput};
use crate::{SearchParams, VectorIndex};
use sann_core::{Dataset, Error, Metric, Result};
use sann_quant::ScalarQuantizer;

/// A scalar-quantized HNSW index.
pub struct HnswSqIndex {
    inner: HnswIndex,
    sq: ScalarQuantizer,
    /// Flat `n × dim` u8 code matrix.
    codes: Vec<u8>,
}

impl std::fmt::Debug for HnswSqIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnswSqIndex")
            .field("len", &self.inner.len())
            .field("dim", &self.inner.dim())
            .finish()
    }
}

impl HnswSqIndex {
    /// Builds the graph (full precision) and the per-vector codes.
    ///
    /// # Errors
    ///
    /// Propagates HNSW build and quantizer training errors.
    pub fn build(data: &Dataset, metric: Metric, config: HnswConfig) -> Result<HnswSqIndex> {
        let inner = HnswIndex::build(data, metric, config)?;
        let sq = ScalarQuantizer::train(data)?;
        let dim = data.dim();
        let mut codes = vec![0u8; data.len() * dim];
        for (i, row) in data.iter().enumerate() {
            codes[i * dim..(i + 1) * dim].copy_from_slice(&sq.encode(row));
        }
        Ok(HnswSqIndex { inner, sq, codes })
    }

    /// The quantizer in use.
    pub fn quantizer(&self) -> &ScalarQuantizer {
        &self.sq
    }

    pub(crate) fn persist_payload(&self, w: &mut sann_core::buf::ByteWriter) {
        self.inner.persist_payload(w);
        self.sq.encode_into(w);
        w.put_u64_le(self.codes.len() as u64);
        w.put_slice(&self.codes);
    }

    pub(crate) fn from_persist(r: &mut sann_core::buf::ByteReader<'_>) -> Result<HnswSqIndex> {
        let inner = HnswIndex::from_persist(r)?;
        let sq = ScalarQuantizer::decode_from(r)?;
        let len = r.get_u64_le()? as usize;
        if sq.dim() != inner.dim() || len != inner.len() * inner.dim() {
            return Err(Error::Corrupt("hnsw-sq: code matrix mismatch".into()));
        }
        let codes = r.take(len)?.to_vec();
        Ok(HnswSqIndex { inner, sq, codes })
    }

    fn code(&self, id: u32) -> &[u8] {
        let dim = self.inner.dim();
        &self.codes[id as usize * dim..(id as usize + 1) * dim]
    }
}

impl VectorIndex for HnswSqIndex {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn kind(&self) -> &'static str {
        "hnsw-sq"
    }

    fn is_storage_based(&self) -> bool {
        false
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        if query.len() != self.inner.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.inner.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let ef = params.ef_search.max(k);
        let mut dists = 0u64;
        let mut found = self.inner.search_graph(
            |id| {
                dists += 1;
                self.sq.distance(query, self.code(id))
            },
            ef,
        );
        found.truncate(k);
        let mut trace = QueryTrace::new();
        // An asymmetric SQ distance costs about the same as a full-precision
        // distance of the same dimensionality (decode + subtract + FMA).
        trace.push_compute(dists, self.inner.dim() as u32);
        Ok(SearchOutput {
            neighbors: found,
            trace,
        })
    }

    fn memory_bytes(&self) -> u64 {
        // Codes replace full-precision vectors at query time; edges stay.
        let edges =
            self.inner.memory_bytes() - (self.inner.len() * self.inner.data().row_bytes()) as u64;
        self.codes.len() as u64 + edges
    }

    fn storage_bytes(&self) -> u64 {
        0
    }

    fn persist_encode(&self) -> Option<Vec<u8>> {
        Some(crate::persist::frame(self.kind(), |w| {
            self.persist_payload(w)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::recall::recall_at_k;
    use sann_datagen::{EmbeddingModel, GroundTruth};

    fn build_small() -> (Dataset, Dataset, GroundTruth, HnswSqIndex, HnswIndex) {
        let model = EmbeddingModel::new(48, 8, 91);
        let base = model.generate(2_000);
        let queries = model.generate_queries(40);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        let sq = HnswSqIndex::build(&base, Metric::L2, HnswConfig::default()).unwrap();
        let full = HnswIndex::build(&base, Metric::L2, HnswConfig::default()).unwrap();
        (base, queries, gt, sq, full)
    }

    fn recall(index: &dyn VectorIndex, queries: &Dataset, gt: &GroundTruth, ef: usize) -> f64 {
        let params = SearchParams::default().with_ef_search(ef);
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let out = index.search(q, 10, &params).unwrap();
            total += recall_at_k(gt.neighbors(i), &out.ids(), 10);
        }
        total / queries.len() as f64
    }

    #[test]
    fn reaches_target_recall_with_higher_ef() {
        let (_, queries, gt, sq, _) = build_small();
        let r = recall(&sq, &queries, &gt, 96);
        assert!(r > 0.9, "sq recall {r} at ef=96");
    }

    #[test]
    fn quantization_costs_recall_at_equal_ef() {
        // The Table II effect: LanceDB needs higher efSearch than the
        // full-precision HNSW setups.
        let (_, queries, gt, sq, full) = build_small();
        let r_sq = recall(&sq, &queries, &gt, 16);
        let r_full = recall(&full, &queries, &gt, 16);
        assert!(
            r_full > r_sq,
            "full-precision {r_full} must beat quantized {r_sq} at equal ef"
        );
    }

    #[test]
    fn memory_is_smaller_than_full_precision() {
        let (_, _, _, sq, full) = build_small();
        // Vectors shrink 4×; graph edges are unchanged, so total savings
        // depend on the edge share.
        assert!(sq.memory_bytes() < (full.memory_bytes() as f64 * 0.75) as u64);
        assert_eq!(sq.storage_bytes(), 0);
        assert_eq!(sq.kind(), "hnsw-sq");
        assert!(!sq.is_storage_based());
    }

    #[test]
    fn rejects_bad_inputs() {
        let (_, queries, _, sq, _) = build_small();
        assert!(sq.search(&[0.0; 3], 10, &SearchParams::default()).is_err());
        assert!(sq
            .search(queries.row(0), 0, &SearchParams::default())
            .is_err());
    }
}
