//! Minimal data-parallel helpers built on std scoped threads.
//!
//! The workspace deliberately avoids a work-stealing runtime dependency;
//! index builds only need "run this closure over id ranges on all cores".

/// Runs `f(start, end)` over `[0, n)` split into one contiguous range per
/// worker thread. `f` must be safe to run concurrently on disjoint ranges.
pub fn par_ranges<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n == 0 {
        f(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let f = &f;
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                continue;
            }
            scope.spawn(move || f(start, end));
        }
    });
}

/// Number of worker threads to use for builds: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 1000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_ranges(n, 7, |start, end| {
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_is_fine() {
        par_ranges(0, 4, |s, e| assert_eq!(s, e));
    }

    #[test]
    fn single_thread_runs_inline() {
        let count = AtomicU64::new(0);
        par_ranges(10, 1, |s, e| {
            count.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn more_threads_than_items() {
        let count = AtomicU64::new(0);
        par_ranges(3, 16, |s, e| {
            count.fetch_add((e - s) as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}
