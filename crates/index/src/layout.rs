//! On-"disk" layouts for the storage-based indexes.
//!
//! The simulated device is addressed in 4 KiB sectors — the access granularity
//! the paper observes (O-15: >99.99 % of requests during DiskANN search are
//! 4 KiB). Layout rules follow DiskANN's `disk_index` format:
//!
//! * a node record is the full-precision vector followed by the degree and
//!   the neighbor ids, padded so records never straddle a sector boundary
//!   unless a single record is larger than one sector;
//! * records no larger than a sector are packed `floor(4096 / node_bytes)`
//!   per sector (768-d, R=64 → 3332 B → one node per sector);
//! * records larger than a sector span `ceil(node_bytes / 4096)` sectors and
//!   are fetched as *multiple 4 KiB requests*, one per sector (1536-d → two
//!   4 KiB requests per node) — which is why request size stays 4 KiB even
//!   for 1536-dimensional datasets.

use crate::trace::IoReq;
use sann_core::{cast, Error, Result};
use sann_obs::IoProvenance;

/// Device sector (and page-cache page) size in bytes.
pub const SECTOR_BYTES: u64 = 4096;

/// Maximum size of one sequential read request, mirroring the kernel's
/// `max_sectors_kb` style splitting that the paper's 128 KiB fio runs use.
pub const MAX_REQUEST_BYTES: u64 = 128 * 1024;

/// Sector-aligned placement of fixed-size node records (the DiskANN layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskLayout {
    node_bytes: u64,
    nodes_per_sector: u64,
    sectors_per_node: u64,
    n_nodes: u64,
    base_offset: u64,
}

impl DiskLayout {
    /// Creates a layout for `n_nodes` records of `node_bytes` bytes starting
    /// at byte `base_offset` (which must be sector-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `node_bytes` is zero or `base_offset` is not sector-aligned.
    pub fn new(n_nodes: u64, node_bytes: u64, base_offset: u64) -> DiskLayout {
        assert!(node_bytes > 0, "node_bytes must be positive");
        assert_eq!(
            base_offset % SECTOR_BYTES,
            0,
            "base offset must be sector-aligned"
        );
        if node_bytes <= SECTOR_BYTES {
            DiskLayout {
                node_bytes,
                nodes_per_sector: SECTOR_BYTES / node_bytes,
                sectors_per_node: 1,
                n_nodes,
                base_offset,
            }
        } else {
            DiskLayout {
                node_bytes,
                nodes_per_sector: 0,
                sectors_per_node: node_bytes.div_ceil(SECTOR_BYTES),
                n_nodes,
                base_offset,
            }
        }
    }

    /// Bytes of one node record (before padding).
    pub fn node_bytes(&self) -> u64 {
        self.node_bytes
    }

    /// Records per sector (0 when a record spans multiple sectors).
    pub fn nodes_per_sector(&self) -> u64 {
        self.nodes_per_sector
    }

    /// Sectors per record (1 when records pack into sectors).
    pub fn sectors_per_node(&self) -> u64 {
        self.sectors_per_node
    }

    /// Number of records.
    pub fn n_nodes(&self) -> u64 {
        self.n_nodes
    }

    /// Byte offset of the first record (the region start passed to
    /// [`DiskLayout::new`]).
    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    /// First sector (byte offset) of node `id`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `id >= n_nodes` — an id a
    /// corrupt graph or a stale caller handed us, which must surface as a
    /// recoverable error rather than tearing down the whole sweep (the
    /// PR 5 panic-path policy).
    pub fn node_offset(&self, id: u64) -> Result<u64> {
        if id >= self.n_nodes {
            return Err(Error::invalid_parameter(
                "node_id",
                format!("id {id} out of range for layout of {} nodes", self.n_nodes),
            ));
        }
        Ok(
            if let Some(sector) = id.checked_div(self.nodes_per_sector) {
                self.base_offset + sector * SECTOR_BYTES
            } else {
                self.base_offset + id * self.sectors_per_node * SECTOR_BYTES
            },
        )
    }

    /// The read requests needed to fetch node `id`: one 4 KiB request per
    /// sector the record occupies, tagged with `provenance`. Needed bytes
    /// are the record's `node_bytes` spread over its sectors, so
    /// fetched-vs-needed accounting sees the sector padding exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `id >= n_nodes` (see
    /// [`DiskLayout::node_offset`]).
    pub fn node_reqs(&self, id: u64, provenance: IoProvenance) -> Result<Vec<IoReq>> {
        let first = self.node_offset(id)?;
        Ok((0..self.sectors_per_node.max(1))
            .map(|s| {
                let needed =
                    (self.node_bytes - (s * SECTOR_BYTES).min(self.node_bytes)).min(SECTOR_BYTES);
                IoReq::tagged(
                    first + s * SECTOR_BYTES,
                    cast::u32_from_u64(SECTOR_BYTES),
                    cast::u32_from_u64(needed),
                    provenance,
                )
            })
            .collect())
    }

    /// Total bytes the layout occupies on the device (sector-aligned).
    pub fn total_bytes(&self) -> u64 {
        if self.nodes_per_sector > 0 {
            self.n_nodes.div_ceil(self.nodes_per_sector) * SECTOR_BYTES
        } else {
            self.n_nodes * self.sectors_per_node * SECTOR_BYTES
        }
    }

    /// One past the last byte used by this layout (for stacking regions).
    pub fn end_offset(&self) -> u64 {
        self.base_offset + self.total_bytes()
    }
}

/// Splits a contiguous byte range (e.g. an IVF posting list) into
/// sector-aligned sequential read requests of at most
/// [`MAX_REQUEST_BYTES`] each, tagged with `provenance`. Each request's
/// needed bytes are its overlap with the unaligned `[offset,
/// offset + bytes)` payload, so alignment slop at both ends counts as
/// amplification.
pub fn range_reqs(offset: u64, bytes: u64, provenance: IoProvenance) -> Vec<IoReq> {
    if bytes == 0 {
        return Vec::new();
    }
    let start = offset / SECTOR_BYTES * SECTOR_BYTES;
    let end = (offset + bytes).div_ceil(SECTOR_BYTES) * SECTOR_BYTES;
    let mut reqs = Vec::new();
    let mut at = start;
    while at < end {
        let len = (end - at).min(MAX_REQUEST_BYTES);
        let needed = (offset + bytes).min(at + len) - offset.max(at);
        reqs.push(IoReq::tagged(
            at,
            cast::u32_from_u64(len),
            cast::u32_from_u64(needed),
            provenance,
        ));
        at += len;
    }
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohere_node_fits_one_sector() {
        // 768-d f32 vector + degree u32 + 64 u32 neighbors = 3332 bytes.
        let layout = DiskLayout::new(1000, 768 * 4 + 4 + 64 * 4, 0);
        assert_eq!(layout.nodes_per_sector(), 1);
        assert_eq!(layout.sectors_per_node(), 1);
        let reqs = layout.node_reqs(5, IoProvenance::GraphAdjacency).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].len, 4096);
        assert_eq!(reqs[0].offset, 5 * 4096);
        assert_eq!(reqs[0].needed, 3332, "needed = record bytes, not sector");
        assert_eq!(reqs[0].provenance, IoProvenance::GraphAdjacency);
    }

    #[test]
    fn openai_node_spans_two_sectors_as_two_4k_requests() {
        // 1536-d f32 vector + degree + 64 neighbors = 6404 bytes.
        let layout = DiskLayout::new(1000, 1536 * 4 + 4 + 64 * 4, 0);
        assert_eq!(layout.sectors_per_node(), 2);
        let reqs = layout.node_reqs(3, IoProvenance::GraphAdjacency).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(
            reqs.iter().map(|r| r.needed as u64).sum::<u64>(),
            6404,
            "needed bytes spread over the record's sectors"
        );
        assert_eq!(reqs[0].needed, 4096);
        assert_eq!(reqs[1].needed, 6404 - 4096);
        assert!(
            reqs.iter().all(|r| r.len == 4096),
            "O-15: requests stay 4 KiB"
        );
        assert_eq!(reqs[0].offset, 3 * 2 * 4096);
        assert_eq!(reqs[1].offset, 3 * 2 * 4096 + 4096);
    }

    #[test]
    fn small_nodes_pack() {
        let layout = DiskLayout::new(10, 1000, 0);
        assert_eq!(layout.nodes_per_sector(), 4);
        assert_eq!(
            layout.node_offset(0).unwrap(),
            layout.node_offset(3).unwrap()
        );
        assert_ne!(
            layout.node_offset(3).unwrap(),
            layout.node_offset(4).unwrap()
        );
        assert_eq!(layout.total_bytes(), 3 * 4096);
    }

    #[test]
    fn base_offset_applies() {
        let layout = DiskLayout::new(4, 4096, 8192);
        assert_eq!(layout.node_offset(0).unwrap(), 8192);
        assert_eq!(layout.end_offset(), 8192 + 4 * 4096);
    }

    #[test]
    fn out_of_range_id_is_an_error() {
        // Regression: this used to panic (`assert!(id < n_nodes)`), tearing
        // down a whole sweep on one corrupt graph edge. It must be a
        // recoverable InvalidParameter error instead.
        let layout = DiskLayout::new(4, 128, 0);
        assert!(layout.node_offset(99).is_err());
        assert!(layout.node_reqs(99, IoProvenance::GraphAdjacency).is_err());
        assert!(layout.node_offset(3).is_ok(), "last valid id still works");
    }

    #[test]
    fn range_reqs_split_at_128k() {
        let reqs = range_reqs(0, 300 * 1024, IoProvenance::IvfPostingList);
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].len, 128 * 1024);
        assert_eq!(reqs[1].len, 128 * 1024);
        assert_eq!(reqs[2].len as u64, 300 * 1024 - 256 * 1024);
        assert_eq!(reqs[1].offset, 128 * 1024);
        // An aligned range needs every byte it fetches.
        assert!(reqs.iter().all(|r| r.needed == r.len));
    }

    #[test]
    fn range_reqs_tail_needed_is_exact() {
        // Regression: the tail request's needed bytes must be the exact
        // payload overlap, not rounded up to the fetched sector — rounding
        // up silently deflates read-amplification stats for unaligned
        // ranges.
        let reqs = range_reqs(0, 128 * 1024 + 1, IoProvenance::IvfPostingList);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].needed, 128 * 1024);
        assert_eq!(reqs[1].len, 4096, "tail fetches a whole sector");
        assert_eq!(reqs[1].needed, 1, "but needs exactly one payload byte");

        // Unaligned start and tail, spanning a request split: slop at both
        // ends counts as amplification, everything in between is needed.
        let reqs = range_reqs(1000, 200 * 1024, IoProvenance::IvfPostingList);
        let total_needed: u64 = reqs.iter().map(|r| u64::from(r.needed)).sum();
        assert_eq!(total_needed, 200 * 1024, "needed sums to the payload");
        assert_eq!(reqs[0].needed as u64, 128 * 1024 - 1000);
        let tail = reqs.last().unwrap();
        assert_eq!(
            tail.needed as u64,
            200 * 1024 - (128 * 1024 - 1000),
            "tail needed is the remaining payload, not the fetched sectors"
        );
        assert!(u64::from(tail.needed) < u64::from(tail.len));
    }

    #[test]
    fn range_reqs_align_to_sectors() {
        let reqs = range_reqs(100, 200, IoProvenance::IvfPostingList);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].offset, 0);
        assert_eq!(reqs[0].len, 4096);
        assert_eq!(reqs[0].needed, 200, "only the payload overlap is needed");
    }

    #[test]
    fn range_reqs_empty() {
        assert!(range_reqs(4096, 0, IoProvenance::Metadata).is_empty());
    }
}
