//! SPANN — the cluster-based storage index (Chen et al., NeurIPS 2021),
//! described in the paper's §II-B as DiskANN's main storage-based
//! alternative.
//!
//! Memory holds the cluster centroids, themselves indexed by an HNSW graph
//! for fast candidate-cluster selection; the full-precision vectors live in
//! per-cluster *posting lists* on the device. Two design points distinguish
//! SPANN from IVF/DiskANN, and both shape its I/O profile:
//!
//! * **closure assignment**: a vector near a cluster border is replicated
//!   into every cluster whose centroid is within `(1 + epsilon)` of its
//!   nearest centroid distance (capped at [`SpannConfig::max_replicas`],
//!   8 in the SPANN paper) — recall improves, at the cost of space
//!   amplification on the device;
//! * **posting lists sized for one disk read**: lists are read sequentially
//!   in large requests, so SPANN issues *few large* reads where DiskANN
//!   issues *many dependent 4 KiB* reads.

use crate::hnsw::{HnswConfig, HnswIndex};
use crate::layout::{range_reqs, SECTOR_BYTES};
use crate::trace::{QueryTrace, SearchOutput};
use crate::{SearchParams, VectorIndex};
use sann_core::distance::l2_squared;
use sann_core::{Dataset, Error, Metric, Result, TopK};
use sann_quant::KMeans;

/// Build-time configuration for [`SpannIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannConfig {
    /// Target vectors per posting list before replication (controls
    /// `nlist = n / target_list_len`).
    pub target_list_len: usize,
    /// Closure-assignment slack: a vector joins every cluster with
    /// `d(v, c) <= (1 + epsilon) * d(v, nearest c)`.
    pub epsilon: f32,
    /// Replication cap per vector (SPANN uses 8).
    pub max_replicas: usize,
    /// Query-time pruning slack: skip candidate clusters farther than
    /// `(1 + query_epsilon)` times the nearest candidate.
    pub query_epsilon: f32,
    /// HNSW configuration for the in-memory centroid index.
    pub centroid_index: HnswConfig,
    /// K-means seed.
    pub seed: u64,
}

impl Default for SpannConfig {
    fn default() -> Self {
        SpannConfig {
            target_list_len: 32,
            epsilon: 0.15,
            max_replicas: 8,
            query_epsilon: 0.6,
            centroid_index: HnswConfig::default(),
            seed: 0x0005_9A44,
        }
    }
}

/// The SPANN index: centroids (+ HNSW over them) in memory, replicated
/// posting lists of full vectors on the device.
pub struct SpannIndex {
    data: Dataset,
    metric: Metric,
    centroids: Dataset,
    centroid_index: HnswIndex,
    /// Per-cluster member ids (with replication).
    lists: Vec<Vec<u32>>,
    /// Device byte offset of each posting list.
    list_offsets: Vec<u64>,
    /// Bytes of each posting list.
    list_bytes: Vec<u64>,
    total_storage: u64,
    config: SpannConfig,
}

impl std::fmt::Debug for SpannIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpannIndex")
            .field("len", &self.data.len())
            .field("dim", &self.data.dim())
            .field("nlist", &self.lists.len())
            .field("replication", &self.replication_factor())
            .finish()
    }
}

impl SpannIndex {
    /// Builds the index: K-means centroids, closure assignment with
    /// replication, HNSW over centroids, and the on-device layout.
    ///
    /// # Errors
    ///
    /// Propagates clustering and centroid-index build errors.
    pub fn build(data: &Dataset, metric: Metric, config: SpannConfig) -> Result<SpannIndex> {
        if data.is_empty() {
            return Err(Error::Empty("dataset"));
        }
        if config.max_replicas == 0 {
            return Err(Error::invalid_parameter("max_replicas", "must be positive"));
        }
        if config.epsilon < 0.0 {
            return Err(Error::invalid_parameter("epsilon", "must be non-negative"));
        }
        let nlist = (data.len() / config.target_list_len.max(1)).max(1);
        let kmeans = KMeans::new(nlist)
            .with_seed(config.seed)
            .with_sample_limit(100_000)
            .with_max_iters(10)
            .fit(data)?;
        let centroids = kmeans.centroids.clone();

        // Closure assignment: replicate border vectors. Distances here are
        // squared L2, so the slack applies to the squared threshold.
        let slack = (1.0 + config.epsilon) * (1.0 + config.epsilon);
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (id, row) in data.iter().enumerate() {
            let mut dists: Vec<(f32, usize)> = (0..nlist)
                .map(|c| (l2_squared(row, centroids.row(c)), c))
                .collect();
            dists.sort_by(|a, b| a.0.total_cmp(&b.0));
            let nearest = dists[0].0;
            for &(d, c) in dists.iter().take(config.max_replicas) {
                if d <= nearest * slack || c == dists[0].1 {
                    lists[c].push(id as u32);
                } else {
                    break;
                }
            }
        }

        let centroid_index = HnswIndex::build(&centroids, metric, config.centroid_index)?;

        // Layout: one sector-aligned contiguous region per posting list,
        // entries of (id + full vector).
        let entry_bytes = 4 + data.row_bytes() as u64;
        let mut list_offsets = Vec::with_capacity(nlist);
        let mut list_bytes = Vec::with_capacity(nlist);
        let mut offset = 0u64;
        for list in &lists {
            let bytes = list.len() as u64 * entry_bytes;
            list_offsets.push(offset);
            list_bytes.push(bytes);
            offset += bytes.div_ceil(SECTOR_BYTES) * SECTOR_BYTES;
        }
        Ok(SpannIndex {
            data: data.clone(),
            metric,
            centroids,
            centroid_index,
            lists,
            list_offsets,
            list_bytes,
            total_storage: offset,
            config,
        })
    }

    /// Number of posting lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Mean copies per vector on the device (≥ 1; the space-amplification
    /// factor the paper's §II-B warns about).
    pub fn replication_factor(&self) -> f64 {
        let stored: usize = self.lists.iter().map(Vec::len).sum();
        stored as f64 / self.data.len().max(1) as f64
    }

    /// The build configuration.
    pub fn config(&self) -> &SpannConfig {
        &self.config
    }
}

impl VectorIndex for SpannIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn kind(&self) -> &'static str {
        "spann"
    }

    fn is_storage_based(&self) -> bool {
        true
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        if query.len() != self.data.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.data.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let nprobe = params.nprobe.clamp(1, self.lists.len());
        let mut trace = QueryTrace::new();

        // Stage 1: candidate clusters via the in-memory HNSW over centroids.
        let centroid_out = self.centroid_index.search(
            query,
            nprobe,
            &SearchParams::default().with_ef_search((2 * nprobe).max(32)),
        )?;
        trace.steps.extend(centroid_out.trace.steps);

        // Stage 2: query-time pruning (skip clusters much farther than the
        // nearest candidate), then read + scan the surviving posting lists.
        let nearest = centroid_out
            .neighbors
            .first()
            .map(|n| n.dist)
            .unwrap_or(0.0);
        let prune = (1.0 + self.config.query_epsilon) * (1.0 + self.config.query_epsilon);
        let mut topk = TopK::new(k);
        let mut scanned = 0u64;
        for cand in &centroid_out.neighbors {
            if cand.dist > nearest * prune {
                continue;
            }
            let c = cand.id as usize;
            if self.lists[c].is_empty() {
                continue;
            }
            // SPANN posting lists hold (id + full vector) entries.
            trace.push_read(range_reqs(
                self.list_offsets[c],
                self.list_bytes[c],
                sann_obs::IoProvenance::IvfPostingList,
            ));
            for &id in &self.lists[c] {
                topk.push(id, self.metric.distance(query, self.data.row(id as usize)));
            }
            scanned += self.lists[c].len() as u64;
        }
        trace.push_compute(scanned, self.data.dim() as u32);

        Ok(SearchOutput {
            neighbors: topk.into_sorted_vec(),
            trace,
        })
    }

    fn memory_bytes(&self) -> u64 {
        // Centroids + their HNSW graph.
        self.centroid_index.memory_bytes()
            + (self.centroids.len() * self.centroids.row_bytes()) as u64
    }

    fn storage_bytes(&self) -> u64 {
        self.total_storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::recall::recall_at_k;
    use sann_datagen::{EmbeddingModel, GroundTruth};

    fn build_small() -> (Dataset, Dataset, GroundTruth, SpannIndex) {
        let model = EmbeddingModel::new(64, 8, 123);
        let base = model.generate(3_000);
        let queries = model.generate_queries(30);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        let index = SpannIndex::build(&base, Metric::L2, SpannConfig::default()).unwrap();
        (base, queries, gt, index)
    }

    fn recall(index: &SpannIndex, queries: &Dataset, gt: &GroundTruth, nprobe: usize) -> f64 {
        let params = SearchParams::default().with_nprobe(nprobe);
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let out = index.search(q, 10, &params).unwrap();
            total += recall_at_k(gt.neighbors(i), &out.ids(), 10);
        }
        total / queries.len() as f64
    }

    #[test]
    fn reaches_high_recall() {
        let (_, queries, gt, index) = build_small();
        let r = recall(&index, &queries, &gt, 16);
        assert!(r > 0.9, "recall {r} at nprobe=16");
    }

    #[test]
    fn replication_amplifies_space() {
        let (base, _, _, index) = build_small();
        let factor = index.replication_factor();
        assert!(factor > 1.05, "closure assignment must replicate: {factor}");
        assert!(factor <= 8.0, "replication is capped at 8: {factor}");
        let raw = (base.len() * base.row_bytes()) as u64;
        assert!(
            index.storage_bytes() > raw,
            "space amplification on the device"
        );
    }

    #[test]
    fn reads_are_large_and_few_compared_to_diskann() {
        // The paper's §II-B contrast: cluster-based indexes fit the access
        // granularity (few large sequential reads); graph-based indexes
        // issue many dependent 4 KiB reads.
        let (base, queries, _, spann) = build_small();
        let diskann = crate::DiskAnnIndex::build(
            &base,
            Metric::L2,
            crate::DiskAnnConfig {
                graph: crate::VamanaConfig {
                    r: 32,
                    ..Default::default()
                },
                pq_m: 16,
                pq_ksub: 64,
                base_offset: 0,
            },
        )
        .unwrap();
        let q = queries.row(0);
        let s_out = spann
            .search(q, 10, &SearchParams::default().with_nprobe(8))
            .unwrap();
        let d_out = diskann
            .search(q, 10, &SearchParams::default().with_search_list(30))
            .unwrap();
        let s_mean_req = s_out.trace.read_bytes() as f64 / s_out.trace.io_count().max(1) as f64;
        let d_mean_req = d_out.trace.read_bytes() as f64 / d_out.trace.io_count().max(1) as f64;
        assert!(
            s_mean_req > 2.0 * d_mean_req,
            "spann mean request {s_mean_req} should dwarf diskann {d_mean_req}"
        );
        assert!(
            s_out.trace.hops() < d_out.trace.hops(),
            "spann has no read-after-read dependency chain"
        );
    }

    #[test]
    fn memory_holds_centroids_not_vectors() {
        let (base, _, _, index) = build_small();
        let raw = (base.len() * base.row_bytes()) as u64;
        assert!(
            index.memory_bytes() < raw / 4,
            "only centroids stay in memory"
        );
    }

    #[test]
    fn more_probes_help_recall() {
        let (_, queries, gt, index) = build_small();
        let low = recall(&index, &queries, &gt, 2);
        let high = recall(&index, &queries, &gt, 32);
        assert!(high >= low, "{low} -> {high}");
    }

    #[test]
    fn rejects_bad_inputs() {
        let (_, queries, _, index) = build_small();
        assert!(index
            .search(&[0.0; 8], 10, &SearchParams::default())
            .is_err());
        assert!(index
            .search(queries.row(0), 0, &SearchParams::default())
            .is_err());
        let tiny = EmbeddingModel::new(8, 2, 1).generate(50);
        assert!(SpannIndex::build(
            &tiny,
            Metric::L2,
            SpannConfig {
                max_replicas: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(SpannIndex::build(
            &tiny,
            Metric::L2,
            SpannConfig {
                epsilon: -1.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(
            SpannIndex::build(&Dataset::with_dim(4), Metric::L2, SpannConfig::default()).is_err()
        );
    }
}
