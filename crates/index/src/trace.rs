//! Query traces: the record of work a search performed.
//!
//! A trace is an ordered list of [`TraceStep`]s. Steps are *sequentially
//! dependent* — step `i+1` cannot start before step `i` completes — which is
//! exactly the dependency structure of graph traversal on storage ("graph-
//! based indexes are prone to high latency due to their dependency between
//! I/O requests", paper §II-B). Parallelism *within* a step is explicit: a
//! [`TraceStep::Read`] carries the batch of requests issued together (the
//! DiskANN beam), and the engine lets them proceed concurrently.

use sann_core::{Error, Neighbor, Result};

/// Sector size every storage-resident layout in this workspace is built on.
const SECTOR_BYTES: u64 = 4096;

/// One block-level read request, 4 KiB-aligned by construction of the disk
/// layouts in [`crate::layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoReq {
    /// Byte offset on the simulated device.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u32,
    /// Payload bytes the search actually needs out of this request —
    /// `len` minus sector padding and alignment slop. Read amplification
    /// per run is `fetched bytes / needed bytes`; the layouts set this
    /// exactly (a 3332 B node record fetched as one 4 KiB sector needs
    /// 3332 of the 4096 bytes).
    pub needed: u32,
    /// What the bytes are (graph adjacency, posting list, ...). Threaded
    /// through the engine into `ssdsim::IoEvent` and the obs `IoSpan` so
    /// per-run I/O breaks down by what each read fetched.
    pub provenance: sann_obs::IoProvenance,
}

impl IoReq {
    /// Creates an untagged request: default (metadata) provenance and
    /// every fetched byte counted as needed.
    pub fn new(offset: u64, len: u32) -> Self {
        IoReq {
            offset,
            len,
            needed: len,
            provenance: sann_obs::IoProvenance::default(),
        }
    }

    /// Creates a fully tagged request.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `needed <= len` — a request can never need more
    /// bytes than it fetches.
    pub fn tagged(offset: u64, len: u32, needed: u32, provenance: sann_obs::IoProvenance) -> Self {
        debug_assert!(needed <= len, "needed bytes exceed request length");
        IoReq {
            offset,
            len,
            needed,
            provenance,
        }
    }

    /// The same request at a shifted offset (beam replication onto
    /// distinct device regions), tags preserved.
    pub fn shifted(self, delta: u64) -> Self {
        IoReq {
            offset: self.offset + delta,
            ..self
        }
    }
}

/// One unit of CPU work carried inside an overlapped step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuOp {
    /// Full-precision distance computations.
    Compute {
        /// Number of distance evaluations.
        count: u64,
        /// Vector dimensionality of each evaluation.
        dim: u32,
    },
    /// Product-quantization ADC lookups.
    PqLookup {
        /// Number of code distances evaluated.
        count: u64,
        /// Code length in bytes.
        m: u32,
    },
}

/// One unit of sequentially-ordered work inside a query.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// Full-precision distance computations: `count` distances at
    /// dimensionality `dim`.
    Compute {
        /// Number of distance evaluations.
        count: u64,
        /// Vector dimensionality of each evaluation.
        dim: u32,
    },
    /// Product-quantization ADC lookups: `count` code-distance evaluations
    /// with `m`-byte codes (an order of magnitude cheaper than full
    /// precision).
    PqLookup {
        /// Number of code distances evaluated.
        count: u64,
        /// Code length in bytes.
        m: u32,
    },
    /// A batch of reads issued concurrently; the step completes when the
    /// slowest request completes (DiskANN beam semantics).
    Read {
        /// The requests in the batch.
        reqs: Vec<IoReq>,
    },
    /// Reads and CPU work proceeding concurrently: the requests are in
    /// flight *while* the CPU ops run, and the step completes when both
    /// finish (software-pipelined beam search / look-ahead prefetch). An
    /// overlapped step is *not* a dependency barrier for phase
    /// classification: a trailing overlapped step whose reads are pure
    /// prefetch does not make the compute before it part of the search
    /// loop — see [`QueryTrace::step_phases`].
    Overlapped {
        /// The speculative / pipelined requests in flight.
        reqs: Vec<IoReq>,
        /// The CPU work running while the requests are serviced
        /// (empty for a prefetch-only step).
        cpu: Vec<CpuOp>,
    },
}

impl TraceStep {
    /// The observability [`Phase`](sann_obs::Phase) this step is billed
    /// to. CPU steps (full-precision compute and PQ lookups) are
    /// [`Compute`](sann_obs::Phase::Compute) — unless they trail the last
    /// *blocking* read beam, in which case they are the query's
    /// [`Rerank`](sann_obs::Phase::Rerank) pass; read beams are
    /// [`BeamIssue`](sann_obs::Phase::BeamIssue) (the engine splits the
    /// beam's service time into flash-service / cache-hit on its own,
    /// since only it knows the cache state). Overlapped steps bill to
    /// beam-issue: their reads define the step, and the engine attributes
    /// the concurrent CPU time itself.
    ///
    /// `after_last_read` must mean "after the last *blocking*
    /// [`Read`](TraceStep::Read)": a trailing overlapped step whose reads
    /// are speculative prefetch must not demote the true rerank pass
    /// before it back to plain compute.
    pub fn phase(&self, after_last_read: bool) -> sann_obs::Phase {
        match self {
            TraceStep::Compute { .. } | TraceStep::PqLookup { .. } => {
                if after_last_read {
                    sann_obs::Phase::Rerank
                } else {
                    sann_obs::Phase::Compute
                }
            }
            TraceStep::Read { .. } | TraceStep::Overlapped { .. } => sann_obs::Phase::BeamIssue,
        }
    }
}

/// The full work log of one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryTrace {
    /// Ordered, sequentially-dependent steps.
    pub steps: Vec<TraceStep>,
}

impl QueryTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        QueryTrace::default()
    }

    /// Appends a compute step (no-op for `count == 0`).
    pub fn push_compute(&mut self, count: u64, dim: u32) {
        if count == 0 {
            return;
        }
        // Merge with a trailing compute step of the same dimensionality to
        // keep traces compact.
        if let Some(TraceStep::Compute { count: c, dim: d }) = self.steps.last_mut() {
            if *d == dim {
                *c += count;
                return;
            }
        }
        self.steps.push(TraceStep::Compute { count, dim });
    }

    /// Appends a PQ-lookup step (no-op for `count == 0`).
    pub fn push_pq_lookup(&mut self, count: u64, m: u32) {
        if count == 0 {
            return;
        }
        if let Some(TraceStep::PqLookup { count: c, m: mm }) = self.steps.last_mut() {
            if *mm == m {
                *c += count;
                return;
            }
        }
        self.steps.push(TraceStep::PqLookup { count, m });
    }

    /// Appends a read beam (no-op for an empty batch).
    pub fn push_read(&mut self, reqs: Vec<IoReq>) {
        if reqs.is_empty() {
            return;
        }
        self.steps.push(TraceStep::Read { reqs });
    }

    /// Appends an overlapped step: `reqs` in flight while `cpu` runs.
    /// Zero-work CPU ops are dropped; with no requests left the step
    /// degenerates to plain sequential CPU steps (there is nothing to
    /// overlap with), and an empty call is a no-op.
    pub fn push_overlapped(&mut self, reqs: Vec<IoReq>, cpu: Vec<CpuOp>) {
        let cpu: Vec<CpuOp> = cpu
            .into_iter()
            .filter(|op| match op {
                CpuOp::Compute { count, .. } | CpuOp::PqLookup { count, .. } => *count > 0,
            })
            .collect();
        if reqs.is_empty() {
            for op in cpu {
                match op {
                    CpuOp::Compute { count, dim } => self.push_compute(count, dim),
                    CpuOp::PqLookup { count, m } => self.push_pq_lookup(count, m),
                }
            }
            return;
        }
        self.steps.push(TraceStep::Overlapped { reqs, cpu });
    }

    /// Total number of I/O requests issued (blocking and overlapped).
    pub fn io_count(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                TraceStep::Read { reqs } | TraceStep::Overlapped { reqs, .. } => reqs.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes read (blocking and overlapped).
    pub fn read_bytes(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                TraceStep::Read { reqs } | TraceStep::Overlapped { reqs, .. } => {
                    reqs.iter().map(|r| r.len as u64).sum()
                }
                _ => 0,
            })
            .sum()
    }

    /// Number of *blocking* read beams (graph round trips for DiskANN).
    /// Overlapped steps ride on the blocking beam of their hop — pipelined
    /// search still performs one dependency round trip per hop — so they
    /// are not counted separately.
    pub fn hops(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| matches!(s, TraceStep::Read { .. }))
            .count() as u64
    }

    /// Total full-precision distance evaluations (including those running
    /// under overlapped steps).
    pub fn compute_count(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                TraceStep::Compute { count, .. } => *count,
                TraceStep::Overlapped { cpu, .. } => cpu
                    .iter()
                    .map(|op| match op {
                        CpuOp::Compute { count, .. } => *count,
                        CpuOp::PqLookup { .. } => 0,
                    })
                    .sum(),
                _ => 0,
            })
            .sum()
    }

    /// Checks the structural invariants every trace must satisfy before it
    /// is handed to the execution engine:
    ///
    /// - compute / PQ-lookup steps carry non-zero work at non-zero width;
    /// - read beams are non-empty (an empty beam would be a zero-length
    ///   dependency barrier — a plan-construction bug); overlapped steps
    ///   carry at least one request (a request-less overlap degenerates to
    ///   plain CPU steps at construction) and only well-formed CPU ops;
    /// - every [`IoReq`] is whole-sector: 4 KiB-aligned offset and a
    ///   positive, 4 KiB-multiple length (the layouts in [`crate::layout`]
    ///   construct requests this way; anything else would silently model
    ///   sub-sector device traffic);
    /// - no blocking beam is wider than `max_beam` requests (`0` =
    ///   unlimited, for index types without a beam-width knob); an
    ///   overlapped step may carry up to `2 * max_beam` — the pipelined
    ///   remainder of the current beam plus a look-ahead window of at most
    ///   one further beam.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] naming the first violated
    /// invariant and the step index.
    pub fn validate(&self, max_beam: usize) -> Result<()> {
        let bad = |step: usize, what: String| {
            Err(Error::invalid_parameter(
                "trace",
                format!("step {step}: {what}"),
            ))
        };
        let check_reqs = |i: usize, reqs: &[IoReq], cap: usize| -> Result<()> {
            if reqs.is_empty() {
                return bad(i, "empty read beam".to_string());
            }
            if cap > 0 && reqs.len() > cap {
                return bad(
                    i,
                    format!("beam of {} exceeds beam_width {cap}", reqs.len()),
                );
            }
            for r in reqs {
                if !r.offset.is_multiple_of(SECTOR_BYTES) {
                    return bad(i, format!("unaligned read at offset {}", r.offset));
                }
                if r.len == 0 || !u64::from(r.len).is_multiple_of(SECTOR_BYTES) {
                    return bad(i, format!("non-sector read length {}", r.len));
                }
            }
            Ok(())
        };
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                TraceStep::Compute { count, dim } => {
                    if *count == 0 || *dim == 0 {
                        return bad(i, format!("degenerate compute ({count} x dim {dim})"));
                    }
                }
                TraceStep::PqLookup { count, m } => {
                    if *count == 0 || *m == 0 {
                        return bad(i, format!("degenerate pq lookup ({count} x m {m})"));
                    }
                }
                TraceStep::Read { reqs } => check_reqs(i, reqs, max_beam)?,
                TraceStep::Overlapped { reqs, cpu } => {
                    check_reqs(i, reqs, max_beam.saturating_mul(2))?;
                    for op in cpu {
                        match op {
                            CpuOp::Compute { count, dim } => {
                                if *count == 0 || *dim == 0 {
                                    return bad(
                                        i,
                                        format!("degenerate overlapped compute ({count} x {dim})"),
                                    );
                                }
                            }
                            CpuOp::PqLookup { count, m } => {
                                if *count == 0 || *m == 0 {
                                    return bad(
                                        i,
                                        format!("degenerate overlapped pq lookup ({count} x {m})"),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Per-step phase annotations: each step billed to the
    /// [`Phase`](sann_obs::Phase) given by [`TraceStep::phase`], with CPU
    /// steps after the final *blocking* read beam classified as the rerank
    /// pass. Overlapped steps do not move the rerank boundary: a trailing
    /// prefetch-only overlap is speculative I/O riding on the rerank, not
    /// a continuation of the search loop.
    pub fn step_phases(&self) -> Vec<sann_obs::Phase> {
        let last_read = self
            .steps
            .iter()
            .rposition(|s| matches!(s, TraceStep::Read { .. }));
        self.steps
            .iter()
            .enumerate()
            .map(|(i, s)| s.phase(last_read.is_some_and(|r| i > r)))
            .collect()
    }

    /// Total PQ lookups (including those running under overlapped steps).
    pub fn pq_lookup_count(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                TraceStep::PqLookup { count, .. } => *count,
                TraceStep::Overlapped { cpu, .. } => cpu
                    .iter()
                    .map(|op| match op {
                        CpuOp::PqLookup { count, .. } => *count,
                        CpuOp::Compute { .. } => 0,
                    })
                    .sum(),
                _ => 0,
            })
            .sum()
    }
}

/// The result of one search: neighbors plus the work log.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutput {
    /// Approximate nearest neighbors, closest first.
    pub neighbors: Vec<Neighbor>,
    /// The work the search performed.
    pub trace: QueryTrace,
}

impl SearchOutput {
    /// Neighbor ids, closest first.
    pub fn ids(&self) -> Vec<u32> {
        self.neighbors.iter().map(|n| n.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_count_correctly() {
        let mut t = QueryTrace::new();
        t.push_compute(10, 768);
        t.push_read(vec![IoReq::new(0, 4096), IoReq::new(4096, 4096)]);
        t.push_pq_lookup(64, 48);
        t.push_read(vec![IoReq::new(8192, 4096)]);
        assert_eq!(t.io_count(), 3);
        assert_eq!(t.read_bytes(), 3 * 4096);
        assert_eq!(t.hops(), 2);
        assert_eq!(t.compute_count(), 10);
        assert_eq!(t.pq_lookup_count(), 64);
    }

    #[test]
    fn adjacent_compute_steps_merge() {
        let mut t = QueryTrace::new();
        t.push_compute(5, 768);
        t.push_compute(7, 768);
        assert_eq!(t.steps.len(), 1);
        assert_eq!(t.compute_count(), 12);
        t.push_compute(1, 1536);
        assert_eq!(t.steps.len(), 2, "different dim must not merge");
    }

    #[test]
    fn empty_pushes_are_ignored() {
        let mut t = QueryTrace::new();
        t.push_compute(0, 768);
        t.push_pq_lookup(0, 8);
        t.push_read(vec![]);
        assert!(t.steps.is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_traces() {
        let mut t = QueryTrace::new();
        t.push_compute(10, 768);
        t.push_read(vec![IoReq::new(0, 4096), IoReq::new(8192, 8192)]);
        t.push_pq_lookup(64, 48);
        assert!(t.validate(2).is_ok());
        assert!(t.validate(0).is_ok(), "0 means unlimited beam");
        assert!(t.validate(1).is_err(), "beam of 2 must violate width 1");
    }

    #[test]
    fn validate_rejects_malformed_steps() {
        let unaligned = QueryTrace {
            steps: vec![TraceStep::Read {
                reqs: vec![IoReq::new(100, 4096)],
            }],
        };
        assert!(unaligned.validate(0).is_err());
        let short = QueryTrace {
            steps: vec![TraceStep::Read {
                reqs: vec![IoReq::new(0, 512)],
            }],
        };
        assert!(short.validate(0).is_err());
        let empty_beam = QueryTrace {
            steps: vec![TraceStep::Read { reqs: vec![] }],
        };
        assert!(empty_beam.validate(0).is_err());
        let zero_compute = QueryTrace {
            steps: vec![TraceStep::Compute { count: 0, dim: 768 }],
        };
        assert!(zero_compute.validate(0).is_err());
        let zero_m = QueryTrace {
            steps: vec![TraceStep::PqLookup { count: 5, m: 0 }],
        };
        assert!(zero_m.validate(0).is_err());
    }

    #[test]
    fn step_phases_mark_trailing_rerank() {
        use sann_obs::Phase;
        let mut t = QueryTrace::new();
        t.push_pq_lookup(64, 48);
        t.push_read(vec![IoReq::new(0, 4096)]);
        t.push_pq_lookup(32, 48);
        t.push_read(vec![IoReq::new(4096, 4096)]);
        t.push_compute(10, 768);
        assert_eq!(
            t.step_phases(),
            vec![
                Phase::Compute,
                Phase::BeamIssue,
                Phase::Compute,
                Phase::BeamIssue,
                Phase::Rerank,
            ]
        );
        // A trace with no reads at all has no rerank pass.
        let mut cpu_only = QueryTrace::new();
        cpu_only.push_compute(5, 768);
        assert_eq!(cpu_only.step_phases(), vec![Phase::Compute]);
    }

    #[test]
    fn reads_do_not_merge() {
        // Beams are dependency barriers; they must stay separate.
        let mut t = QueryTrace::new();
        t.push_read(vec![IoReq::new(0, 4096)]);
        t.push_read(vec![IoReq::new(4096, 4096)]);
        assert_eq!(t.steps.len(), 2);
        assert_eq!(t.hops(), 2);
    }

    #[test]
    fn overlapped_steps_count_in_aggregates() {
        let mut t = QueryTrace::new();
        t.push_read(vec![IoReq::new(0, 4096)]);
        t.push_overlapped(
            vec![IoReq::new(4096, 4096), IoReq::new(8192, 4096)],
            vec![
                CpuOp::Compute { count: 4, dim: 768 },
                CpuOp::PqLookup { count: 32, m: 48 },
            ],
        );
        t.push_compute(10, 768);
        assert_eq!(t.io_count(), 3, "overlapped reqs count as I/Os");
        assert_eq!(t.read_bytes(), 3 * 4096);
        assert_eq!(t.hops(), 1, "overlapped steps are not extra hops");
        assert_eq!(t.compute_count(), 14);
        assert_eq!(t.pq_lookup_count(), 32);
    }

    #[test]
    fn push_overlapped_degrades_without_reqs() {
        // No requests: nothing to overlap with, so the CPU ops become
        // plain sequential steps (and zero-count ops are dropped).
        let mut t = QueryTrace::new();
        t.push_overlapped(
            vec![],
            vec![
                CpuOp::Compute { count: 4, dim: 768 },
                CpuOp::Compute { count: 0, dim: 768 },
                CpuOp::PqLookup { count: 8, m: 48 },
            ],
        );
        assert_eq!(
            t.steps,
            vec![
                TraceStep::Compute { count: 4, dim: 768 },
                TraceStep::PqLookup { count: 8, m: 48 },
            ]
        );
        // Fully empty call is a no-op.
        let mut empty = QueryTrace::new();
        empty.push_overlapped(vec![], vec![]);
        assert!(empty.steps.is_empty());
    }

    #[test]
    fn trailing_prefetch_overlap_keeps_rerank() {
        // Regression: compute that precedes a prefetch-only trailing
        // overlapped step is still the rerank pass — the speculative reads
        // must not demote it back to plain compute.
        use sann_obs::Phase;
        let mut t = QueryTrace::new();
        t.push_read(vec![IoReq::new(0, 4096)]);
        t.push_compute(10, 768);
        t.push_overlapped(vec![IoReq::new(4096, 4096)], vec![]);
        assert_eq!(
            t.step_phases(),
            vec![Phase::BeamIssue, Phase::Rerank, Phase::BeamIssue]
        );
    }

    #[test]
    fn validate_checks_overlapped_steps() {
        let ok = QueryTrace {
            steps: vec![TraceStep::Overlapped {
                reqs: vec![IoReq::new(0, 4096), IoReq::new(4096, 4096)],
                cpu: vec![CpuOp::Compute { count: 4, dim: 768 }],
            }],
        };
        assert!(ok.validate(0).is_ok());
        // Overlapped steps get a 2x allowance: pipelined remainder of the
        // current beam plus one look-ahead window.
        assert!(ok.validate(1).is_ok());
        let wide = QueryTrace {
            steps: vec![TraceStep::Overlapped {
                reqs: vec![
                    IoReq::new(0, 4096),
                    IoReq::new(4096, 4096),
                    IoReq::new(8192, 4096),
                ],
                cpu: vec![],
            }],
        };
        assert!(wide.validate(1).is_err(), "3 reqs exceed 2 * beam_width 1");
        let unaligned = QueryTrace {
            steps: vec![TraceStep::Overlapped {
                reqs: vec![IoReq::new(100, 4096)],
                cpu: vec![],
            }],
        };
        assert!(unaligned.validate(0).is_err());
        let empty = QueryTrace {
            steps: vec![TraceStep::Overlapped {
                reqs: vec![],
                cpu: vec![CpuOp::Compute { count: 4, dim: 768 }],
            }],
        };
        assert!(empty.validate(0).is_err(), "request-less overlap rejected");
        let zero_op = QueryTrace {
            steps: vec![TraceStep::Overlapped {
                reqs: vec![IoReq::new(0, 4096)],
                cpu: vec![CpuOp::PqLookup { count: 0, m: 48 }],
            }],
        };
        assert!(zero_op.validate(0).is_err());
    }
}
