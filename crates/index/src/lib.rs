//! Vector indexes: Flat, IVF, HNSW, and DiskANN — each built from scratch.
//!
//! Every index implements [`VectorIndex`]: searches return both the
//! approximate neighbors *and* a [`QueryTrace`] recording the work performed
//! (distance computations, PQ lookups, and — for storage-based indexes — the
//! exact block I/O requests with their dependency structure). The trace is
//! what the discrete-event engine in `sann-engine` replays to predict
//! latency, throughput, and device bandwidth; the neighbors are what recall
//! is scored on. Results are always exact algorithm outputs, never modeled.
//!
//! # Index inventory (paper §II-B)
//!
//! | Index | Placement | Paper usage |
//! |---|---|---|
//! | [`FlatIndex`] | memory | ground-truth / baseline |
//! | [`IvfIndex`] | memory | Milvus-IVF |
//! | [`IvfPqIndex`] | storage | LanceDB-IVF (product-quantized, posting lists on disk) |
//! | [`HnswIndex`] | memory | Milvus/Qdrant/Weaviate-HNSW |
//! | [`HnswSqIndex`] | memory | LanceDB-HNSW (scalar-quantized) |
//! | [`MmapHnswIndex`] | storage | Qdrant's mmap mode (graph in memory, vectors page-faulted from storage) |
//! | [`DiskAnnIndex`] | storage | Milvus-DiskANN (PQ in memory, graph + vectors on disk) |
//! | [`SpannIndex`] | storage | SPANN (§II-B's cluster-based alternative: centroids in memory, replicated posting lists on disk) |
//!
//! # Examples
//!
//! ```
//! use sann_index::{HnswConfig, HnswIndex, SearchParams, VectorIndex};
//! use sann_datagen::EmbeddingModel;
//!
//! let data = EmbeddingModel::new(32, 4, 9).generate(500);
//! let index = HnswIndex::build(&data, sann_core::Metric::L2, HnswConfig::default())?;
//! let out = index.search(data.row(3), 1, &SearchParams::default())?;
//! assert_eq!(out.neighbors[0].id, 3);
//! # Ok::<(), sann_core::Error>(())
//! ```

pub mod diskann;
pub mod flat;
pub mod fresh;
pub mod hnsw;
pub mod hnsw_mmap;
pub mod hnsw_sq;
pub mod ivf;
pub mod layout;
pub mod paged;
pub mod par;
pub mod persist;
pub mod spann;
pub mod trace;
pub mod vamana;

pub use diskann::{DiskAnnConfig, DiskAnnIndex};
pub use flat::FlatIndex;
pub use fresh::{FreshConfig, FreshDiskAnnIndex};
pub use hnsw::{HnswConfig, HnswIndex};
pub use hnsw_mmap::MmapHnswIndex;
pub use hnsw_sq::HnswSqIndex;
pub use ivf::{IvfConfig, IvfIndex, IvfPqIndex};
pub use layout::DiskLayout;
pub use paged::PagedLayout;
pub use spann::{SpannConfig, SpannIndex};
pub use trace::{CpuOp, IoReq, QueryTrace, SearchOutput, TraceStep};
pub use vamana::{VamanaConfig, VamanaGraph};

use sann_core::{Neighbor, Result};

/// Which on-device placement a storage-based search reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutKind {
    /// Sequential-by-id node records ([`DiskLayout`], today's default).
    #[default]
    Naive,
    /// Neighbor co-location into multi-sector pages ([`PagedLayout`]),
    /// with in-page duplicate-visit elimination.
    Paged,
}

/// One point of the I/O design space for storage-based beam search:
/// {naive, page-aligned} x {no-prefetch, look-ahead} x {phased, pipelined}.
///
/// The default (`Naive` / no look-ahead / phased) reproduces today's
/// behavior byte-for-byte; the other seven combinations are the design
/// points the `vdbbench explore` sweep measures against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStrategy {
    /// On-device placement of node records.
    pub layout: LayoutKind,
    /// Speculatively issue reads for the likely next-hop nodes while the
    /// current beam's distances are being computed.
    pub look_ahead: bool,
    /// Software-pipelined beam search: submit the whole beam
    /// asynchronously and compute on records as they arrive, so a hop
    /// costs max(beam flight, hop compute) instead of their sum.
    pub pipelined: bool,
}

impl IoStrategy {
    /// Short stable label (`naive+la+pipe` style) for tables and CSVs.
    pub fn label(&self) -> String {
        format!(
            "{}{}{}",
            match self.layout {
                LayoutKind::Naive => "naive",
                LayoutKind::Paged => "paged",
            },
            if self.look_ahead { "+la" } else { "" },
            if self.pipelined { "+pipe" } else { "" },
        )
    }

    /// All eight design points, baseline first, in a stable report order.
    pub fn all() -> Vec<IoStrategy> {
        let mut out = Vec::with_capacity(8);
        for layout in [LayoutKind::Naive, LayoutKind::Paged] {
            for look_ahead in [false, true] {
                for pipelined in [false, true] {
                    out.push(IoStrategy {
                        layout,
                        look_ahead,
                        pipelined,
                    });
                }
            }
        }
        out
    }
}

/// Search-time parameters, a superset across index families.
///
/// Indexes read the fields relevant to them and ignore the rest:
///
/// * IVF reads [`nprobe`](SearchParams::nprobe),
/// * HNSW reads [`ef_search`](SearchParams::ef_search),
/// * DiskANN reads [`search_list`](SearchParams::search_list),
///   [`beam_width`](SearchParams::beam_width) (the paper's §VI parameters)
///   and the [`io`](SearchParams::io) strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchParams {
    /// IVF: number of candidate clusters scanned.
    pub nprobe: usize,
    /// HNSW: candidate queue length (`efSearch`).
    pub ef_search: usize,
    /// DiskANN: candidate list size (`search_list` / `L`).
    pub search_list: usize,
    /// DiskANN: number of node reads issued in parallel per hop (`W`).
    pub beam_width: usize,
    /// Storage-based indexes: layout / prefetch / pipelining strategy.
    pub io: IoStrategy,
}

impl Default for SearchParams {
    /// The paper's Table II defaults: `nprobe` tuned per dataset (16 here),
    /// `efSearch` 27, `search_list` 10, `beam_width` 4, and the naive
    /// phased I/O strategy.
    fn default() -> Self {
        SearchParams {
            nprobe: 16,
            ef_search: 27,
            search_list: 10,
            beam_width: 4,
            io: IoStrategy::default(),
        }
    }
}

impl SearchParams {
    /// Sets `nprobe`.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe;
        self
    }

    /// Sets `ef_search`.
    pub fn with_ef_search(mut self, ef: usize) -> Self {
        self.ef_search = ef;
        self
    }

    /// Sets `search_list`.
    pub fn with_search_list(mut self, l: usize) -> Self {
        self.search_list = l;
        self
    }

    /// Sets `beam_width`.
    pub fn with_beam_width(mut self, w: usize) -> Self {
        self.beam_width = w;
        self
    }

    /// Sets the I/O strategy.
    pub fn with_io(mut self, io: IoStrategy) -> Self {
        self.io = io;
        self
    }
}

/// The interface every index implements.
///
/// The trait is object-safe; `sann-vdb` stores collections behind
/// `Box<dyn VectorIndex>`.
pub trait VectorIndex: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// Whether the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// A short name for reports (e.g. `"hnsw"`, `"diskann"`).
    fn kind(&self) -> &'static str;

    /// Whether searches touch simulated storage (true for DiskANN / IVF-PQ
    /// disk layouts).
    fn is_storage_based(&self) -> bool;

    /// Approximate `k`-nearest-neighbor search.
    ///
    /// Returns the neighbors closest-first plus the [`QueryTrace`] of the
    /// work performed.
    ///
    /// # Errors
    ///
    /// Returns [`sann_core::Error::DimensionMismatch`] when the query has the
    /// wrong dimensionality and [`sann_core::Error::InvalidParameter`] when
    /// parameters are out of range (e.g. `search_list < k`).
    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput>;

    /// Bytes of main memory the index occupies (used for the paper's
    /// memory-cost comparisons).
    fn memory_bytes(&self) -> u64;

    /// Bytes of storage the index occupies (0 for memory-based indexes).
    fn storage_bytes(&self) -> u64;

    /// Serializes the index into the self-describing artifact frame decoded
    /// by [`persist::decode`], or `None` for kinds that do not support
    /// persistence (those are rebuilt instead of cached).
    fn persist_encode(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Convenience: runs `search` for a batch of queries, returning ids per query
/// (the shape recall scoring expects).
///
/// # Errors
///
/// Propagates the first search error.
pub fn search_ids(
    index: &dyn VectorIndex,
    queries: &sann_core::Dataset,
    k: usize,
    params: &SearchParams,
) -> Result<Vec<Vec<u32>>> {
    let mut out = Vec::with_capacity(queries.len());
    for q in queries.iter() {
        let hits = index.search(q, k, params)?;
        out.push(hits.neighbors.iter().map(|n: &Neighbor| n.id).collect());
    }
    Ok(out)
}
