//! DiskANN: the storage-based graph index (Subramanya et al., NeurIPS 2019),
//! as deployed by Milvus in the paper.
//!
//! Memory holds only product-quantized codes (used to rank candidates);
//! the Vamana graph *and* the full-precision vectors live on the device in
//! sector-aligned node records ([`crate::layout::DiskLayout`]). Search is
//! *beam search*: each hop fetches the `W` (`beam_width`) closest unvisited
//! candidates' node records in one batch of parallel 4 KiB reads, reranks
//! the fetched vectors exactly, and expands their neighbors via PQ lookups
//! into a candidate list of length `L` (`search_list`). `W = 1` degenerates
//! to classic best-first search; the paper's §VI studies both parameters.

use crate::layout::DiskLayout;
use crate::paged::PagedLayout;
use crate::trace::{CpuOp, IoReq, QueryTrace, SearchOutput};
use crate::vamana::{VamanaConfig, VamanaGraph};
use crate::{IoStrategy, LayoutKind, SearchParams, VectorIndex};
use sann_core::{Dataset, Error, Metric, Result, TopK};

/// Build-time configuration for [`DiskAnnIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskAnnConfig {
    /// Vamana graph parameters.
    pub graph: VamanaConfig,
    /// PQ sub-spaces; 0 means `dim / 8` (96-byte codes for 768-d vectors —
    /// denser than DiskANN's typical 32–64 bytes because the synthetic
    /// datasets have tighter clusters than SIFT/Cohere, see DESIGN.md).
    /// Must divide `dim` when nonzero.
    pub pq_m: usize,
    /// PQ centroids per sub-space.
    pub pq_ksub: usize,
    /// Byte offset of the index region on the device (sector-aligned).
    pub base_offset: u64,
}

impl Default for DiskAnnConfig {
    fn default() -> Self {
        DiskAnnConfig {
            graph: VamanaConfig::default(),
            pq_m: 0,
            pq_ksub: 256,
            base_offset: 0,
        }
    }
}

/// The storage-based DiskANN index.
pub struct DiskAnnIndex {
    /// Full-precision vectors: conceptually on disk inside the node records;
    /// kept here so "reading a node" can return real data.
    data: Dataset,
    metric: Metric,
    graph: VamanaGraph,
    pq: sann_quant::ProductQuantizer,
    /// In-memory PQ codes, `n × pq_m` bytes (the index's memory footprint).
    codes: Vec<u8>,
    layout: DiskLayout,
    /// Alternative page-aligned placement of the same records
    /// ([`LayoutKind::Paged`]); rebuilt deterministically from the graph, so
    /// the persisted artifact format is unchanged.
    paged: PagedLayout,
}

impl std::fmt::Debug for DiskAnnIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskAnnIndex")
            .field("len", &self.data.len())
            .field("dim", &self.data.dim())
            .field("r", &self.graph.r())
            .field("pq_m", &self.pq.m())
            .field("node_bytes", &self.layout.node_bytes())
            .finish()
    }
}

impl DiskAnnIndex {
    /// Builds the index: Vamana graph, PQ codebooks + codes, disk layout.
    ///
    /// # Errors
    ///
    /// Propagates graph and PQ training errors; rejects a `pq_m` that does
    /// not divide the dataset dimensionality.
    pub fn build(data: &Dataset, metric: Metric, config: DiskAnnConfig) -> Result<DiskAnnIndex> {
        let dim = data.dim();
        let pq_m = if config.pq_m == 0 {
            // Default compression: one byte per 8 dimensions, but always a
            // divisor of dim.
            let target = (dim / 8).max(1);
            (1..=target)
                .rev()
                .find(|&m| dim.is_multiple_of(m))
                .unwrap_or(1)
        } else {
            config.pq_m
        };
        if !dim.is_multiple_of(pq_m) {
            return Err(Error::invalid_parameter(
                "pq_m",
                format!("{pq_m} must divide dim {dim}"),
            ));
        }
        let graph = VamanaGraph::build(data, metric, config.graph)?;
        let ksub = config.pq_ksub.min(data.len().max(2) - 1).clamp(2, 256);
        let pq = sann_quant::ProductQuantizer::train(data, pq_m, ksub, config.graph.seed ^ 0xD1)?;
        let codes = pq.encode_all(data);
        // Node record: full vector + degree + R neighbor slots.
        let node_bytes = (dim * 4 + 4 + graph.r() * 4) as u64;
        let layout = DiskLayout::new(data.len() as u64, node_bytes, config.base_offset);
        let paged = PagedLayout::new(&graph, node_bytes, config.base_offset);
        Ok(DiskAnnIndex {
            data: data.clone(),
            metric,
            graph,
            pq,
            codes,
            layout,
            paged,
        })
    }

    /// The on-device layout (offsets/requests of node records).
    pub fn layout(&self) -> &DiskLayout {
        &self.layout
    }

    /// The page-aligned alternative placement ([`LayoutKind::Paged`]).
    pub fn paged_layout(&self) -> &PagedLayout {
        &self.paged
    }

    /// The underlying Vamana graph.
    pub fn graph(&self) -> &VamanaGraph {
        &self.graph
    }

    /// PQ code length in bytes.
    pub fn pq_m(&self) -> usize {
        self.pq.m()
    }

    /// The search entry point (graph medoid).
    pub fn medoid(&self) -> u32 {
        self.graph.medoid()
    }

    pub(crate) fn persist_payload(&self, w: &mut sann_core::buf::ByteWriter) {
        w.put_u8(self.metric.tag());
        w.put_u64_le(self.layout.base_offset());
        self.data.encode_into(w);
        self.graph.encode_into(w);
        self.pq.encode_into(w);
        w.put_u64_le(self.codes.len() as u64);
        w.put_slice(&self.codes);
    }

    pub(crate) fn from_persist(r: &mut sann_core::buf::ByteReader<'_>) -> Result<DiskAnnIndex> {
        let metric = Metric::from_tag(r.get_u8()?)
            .ok_or_else(|| Error::Corrupt("diskann: unknown metric tag".into()))?;
        let base_offset = r.get_u64_le()?;
        if base_offset % crate::layout::SECTOR_BYTES != 0 {
            return Err(Error::Corrupt("diskann: unaligned base offset".into()));
        }
        let data = Dataset::decode_from(r)?;
        let graph = VamanaGraph::decode_from(r)?;
        let pq = sann_quant::ProductQuantizer::decode_from(r)?;
        let len = r.get_u64_le()? as usize;
        if graph.len() != data.len() || pq.dim() != data.dim() || len != data.len() * pq.m() {
            return Err(Error::Corrupt("diskann: component shape mismatch".into()));
        }
        let codes = r.take(len)?.to_vec();
        let node_bytes = (data.dim() * 4 + 4 + graph.r() * 4) as u64;
        let layout = DiskLayout::new(data.len() as u64, node_bytes, base_offset);
        let paged = PagedLayout::new(&graph, node_bytes, base_offset);
        Ok(DiskAnnIndex {
            data,
            metric,
            graph,
            pq,
            codes,
            layout,
            paged,
        })
    }
}

/// Candidate list entry during beam search.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    id: u32,
    pq_dist: f32,
    visited: bool,
}

/// Per-query record of what is already in memory, at the granularity of the
/// active layout: node records for [`LayoutKind::Naive`], whole pages for
/// [`LayoutKind::Paged`]. This is where the paged layout's in-page
/// duplicate-visit elimination and the look-ahead prefetcher's re-served
/// fetches are decided.
struct FetchedSet {
    kind: LayoutKind,
    set: Vec<bool>,
}

impl FetchedSet {
    fn new(ix: &DiskAnnIndex, strat: IoStrategy) -> FetchedSet {
        match strat.layout {
            LayoutKind::Naive => FetchedSet {
                kind: LayoutKind::Naive,
                set: vec![false; ix.data.len()],
            },
            LayoutKind::Paged => FetchedSet {
                kind: LayoutKind::Paged,
                set: vec![false; ix.paged.n_pages() as usize],
            },
        }
    }

    /// Queues the reads that must complete before node `id` can be visited
    /// this hop. Already-fetched records cost nothing; under the paged
    /// layout a second frontier node on a page already queued *this beam*
    /// only bumps that request's needed bytes.
    fn demand(&mut self, ix: &DiskAnnIndex, id: u64, reqs: &mut Vec<IoReq>) -> Result<()> {
        let prov = sann_obs::IoProvenance::GraphAdjacency;
        match self.kind {
            LayoutKind::Naive => {
                let node_reqs = ix.layout.node_reqs(id, prov)?;
                let slot = &mut self.set[id as usize];
                if !*slot {
                    *slot = true;
                    reqs.extend(node_reqs);
                }
            }
            LayoutKind::Paged => {
                let page = ix.paged.page_of(id)?;
                let slot = &mut self.set[page as usize];
                if !*slot {
                    *slot = true;
                    reqs.push(ix.paged.page_req(page, 1, prov));
                } else if let Some(r) = reqs
                    .iter_mut()
                    .find(|r| r.offset == ix.paged.page_offset(page))
                {
                    // Queued earlier in this very beam: one fetch serves
                    // both visits, and both records' bytes are needed.
                    r.needed = r
                        .needed
                        .saturating_add(sann_core::cast::u32_from_u64(ix.paged.node_bytes()))
                        .min(r.len);
                }
                // Otherwise the page arrived on an earlier hop (or by
                // prefetch): the visit is free — the elimination case.
            }
        }
        Ok(())
    }

    /// Queues a speculative read for node `id` unless its record (or page)
    /// is already in memory or already queued.
    fn speculate(&mut self, ix: &DiskAnnIndex, id: u64, out: &mut Vec<IoReq>) -> Result<()> {
        let prov = sann_obs::IoProvenance::GraphAdjacency;
        match self.kind {
            LayoutKind::Naive => {
                let node_reqs = ix.layout.node_reqs(id, prov)?;
                let slot = &mut self.set[id as usize];
                if !*slot {
                    *slot = true;
                    out.extend(node_reqs);
                }
            }
            LayoutKind::Paged => {
                let page = ix.paged.page_of(id)?;
                let slot = &mut self.set[page as usize];
                if !*slot {
                    *slot = true;
                    out.push(ix.paged.page_req(page, 1, prov));
                }
            }
        }
        Ok(())
    }
}

impl VectorIndex for DiskAnnIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dim(&self) -> usize {
        self.data.dim()
    }

    fn kind(&self) -> &'static str {
        "diskann"
    }

    fn is_storage_based(&self) -> bool {
        true
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        let dim = self.data.dim();
        if query.len() != dim {
            return Err(Error::DimensionMismatch {
                expected: dim,
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let l = params.search_list.max(k);
        let w = params.beam_width.max(1);
        let strat = params.io;
        let mut trace = QueryTrace::new();

        // Building the ADC table costs ksub sub-distance rows ≈ ksub
        // full-dimension distance evaluations.
        let table = self.pq.distance_table(query);
        trace.push_compute(self.pq.ksub() as u64, dim as u32);

        let mut seen = vec![false; self.data.len()];
        let mut cands: Vec<Candidate> = Vec::with_capacity(l + self.graph.r());
        let start = self.graph.medoid();
        seen[start as usize] = true;
        cands.push(Candidate {
            id: start,
            pq_dist: table.distance_at(&self.codes, start as usize),
            visited: false,
        });
        trace.push_pq_lookup(1, self.pq.m() as u32);

        // Exact distances of every fetched (visited) node, for final rerank.
        let mut exact = TopK::new(l.max(k));

        // What is already in memory from earlier (possibly speculative)
        // fetches. Paged layout tracks whole pages — the co-location win;
        // the naive layout only ever re-serves look-ahead prefetches.
        let mut fetched = FetchedSet::new(self, strat);

        loop {
            // Frontier: up to W closest unvisited candidates within the top-L.
            let mut frontier: Vec<u32> = Vec::with_capacity(w);
            for c in cands.iter_mut().take(l) {
                if !c.visited {
                    c.visited = true;
                    frontier.push(c.id);
                    if frontier.len() == w {
                        break;
                    }
                }
            }
            if frontier.is_empty() {
                break;
            }

            // One beam: every frontier record not already in memory, fetched
            // in parallel (page-granular and in-beam-deduplicated under the
            // paged layout).
            let mut reqs = Vec::with_capacity(frontier.len());
            for &id in &frontier {
                fetched.demand(self, u64::from(id), &mut reqs)?;
            }

            // Look-ahead: predict the next frontier and issue its reads
            // speculatively while this hop's distances are computed. A
            // speculated node only wastes its read if it is later displaced
            // from the top-L (anything that stays gets visited before the
            // loop ends), so prediction is confidence-gated: wait until the
            // candidate list is full (early hops churn the most) and only
            // trust unvisited candidates ranked in the top half — a
            // displacement from there needs L/2 closer nodes to arrive.
            let mut prefetch: Vec<IoReq> = Vec::new();
            if strat.look_ahead && cands.len() >= l {
                let mut predicted = 0usize;
                for c in cands.iter().take(l / 2) {
                    if c.visited {
                        continue;
                    }
                    fetched.speculate(self, u64::from(c.id), &mut prefetch)?;
                    predicted += 1;
                    if predicted == w {
                        break;
                    }
                }
            }

            // Pipelined search submits the whole beam asynchronously and
            // computes on records as they arrive, so the hop costs
            // max(beam flight, hop compute) instead of their sum; phased
            // search blocks on the whole beam before any compute. Prefetch
            // requests always ride in the overlapped portion.
            let mut inflight = if strat.pipelined {
                std::mem::take(&mut reqs)
            } else {
                Vec::new()
            };
            inflight.append(&mut prefetch);
            trace.push_read(reqs);

            // The fetched records contain the full vectors (exact rerank) and
            // the adjacency lists (expansion via PQ).
            let mut pq_lookups = 0u64;
            for &id in &frontier {
                let exact_d = self.metric.distance(query, self.data.row(id as usize));
                exact.push(id, exact_d);
                // Replace the candidate's PQ estimate with the exact distance
                // so subsequent frontier picks rank against sharp values.
                if let Some(pos) = cands.iter().position(|c| c.id == id) {
                    cands.remove(pos);
                    let at = cands.partition_point(|x| x.pq_dist <= exact_d);
                    cands.insert(
                        at,
                        Candidate {
                            id,
                            pq_dist: exact_d,
                            visited: true,
                        },
                    );
                }
                for &nb in self.graph.neighbors(id) {
                    if std::mem::replace(&mut seen[nb as usize], true) {
                        continue;
                    }
                    let d = table.distance_at(&self.codes, nb as usize);
                    pq_lookups += 1;
                    insert_candidate(
                        &mut cands,
                        Candidate {
                            id: nb,
                            pq_dist: d,
                            visited: false,
                        },
                        l,
                    );
                }
            }
            if inflight.is_empty() {
                trace.push_compute(frontier.len() as u64, dim as u32);
                trace.push_pq_lookup(pq_lookups, self.pq.m() as u32);
            } else {
                trace.push_overlapped(
                    inflight,
                    vec![
                        CpuOp::Compute {
                            count: frontier.len() as u64,
                            dim: dim as u32,
                        },
                        CpuOp::PqLookup {
                            count: pq_lookups,
                            m: self.pq.m() as u32,
                        },
                    ],
                );
            }
        }

        let mut neighbors = exact.into_sorted_vec();
        neighbors.truncate(k);
        Ok(SearchOutput { neighbors, trace })
    }

    fn memory_bytes(&self) -> u64 {
        // PQ codes + codebooks; full vectors and the graph live on disk.
        let codes = self.codes.len() as u64;
        let codebooks = (self.pq.m() * self.pq.ksub() * (self.data.dim() / self.pq.m()) * 4) as u64;
        codes + codebooks
    }

    fn storage_bytes(&self) -> u64 {
        self.layout.total_bytes()
    }

    fn persist_encode(&self) -> Option<Vec<u8>> {
        Some(crate::persist::frame(self.kind(), |w| {
            self.persist_payload(w)
        }))
    }
}

/// Inserts into a distance-sorted bounded candidate list. Keeps at most
/// `l` *unvisited-or-visited* entries beyond which the tail is truncated
/// (with a small slack so visited entries do not immediately evict fresh
/// candidates).
fn insert_candidate(cands: &mut Vec<Candidate>, c: Candidate, l: usize) {
    let pos = cands.partition_point(|x| x.pq_dist <= c.pq_dist);
    cands.insert(pos, c);
    let cap = l + l / 2 + 1;
    if cands.len() > cap {
        cands.truncate(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_core::recall::recall_at_k;
    use sann_datagen::{EmbeddingModel, GroundTruth};

    fn build_small() -> (Dataset, Dataset, GroundTruth, DiskAnnIndex) {
        let model = EmbeddingModel::new(64, 8, 55);
        let base = model.generate(2_000);
        let queries = model.generate_queries(30);
        let gt = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);
        let config = DiskAnnConfig {
            graph: VamanaConfig {
                r: 32,
                ..VamanaConfig::default()
            },
            pq_m: 32,
            pq_ksub: 64,
            base_offset: 0,
        };
        let index = DiskAnnIndex::build(&base, Metric::L2, config).unwrap();
        (base, queries, gt, index)
    }

    fn mean_recall(
        index: &DiskAnnIndex,
        queries: &Dataset,
        gt: &GroundTruth,
        params: &SearchParams,
    ) -> f64 {
        let mut total = 0.0;
        for (i, q) in queries.iter().enumerate() {
            let out = index.search(q, 10, params).unwrap();
            total += recall_at_k(gt.neighbors(i), &out.ids(), 10);
        }
        total / queries.len() as f64
    }

    #[test]
    fn reaches_target_recall() {
        let (_, queries, gt, index) = build_small();
        let params = SearchParams::default().with_search_list(30);
        let recall = mean_recall(&index, &queries, &gt, &params);
        assert!(recall > 0.9, "recall {recall} too low");
    }

    #[test]
    fn larger_search_list_improves_recall_and_io() {
        // The paper's KF-3: search_list up => accuracy up, I/O up.
        let (_, queries, gt, index) = build_small();
        let p10 = SearchParams::default().with_search_list(10);
        let p100 = SearchParams::default().with_search_list(100);
        let r10 = mean_recall(&index, &queries, &gt, &p10);
        let r100 = mean_recall(&index, &queries, &gt, &p100);
        assert!(r100 >= r10, "recall must not drop: {r10} -> {r100}");
        let t10 = index.search(queries.row(0), 10, &p10).unwrap().trace;
        let t100 = index.search(queries.row(0), 10, &p100).unwrap().trace;
        assert!(
            t100.read_bytes() > 2 * t10.read_bytes(),
            "read bytes should grow markedly: {} -> {}",
            t10.read_bytes(),
            t100.read_bytes()
        );
    }

    #[test]
    fn every_request_is_4kib() {
        // O-15: >99.99% of requests are 4 KiB. In our layout: all of them.
        let (_, queries, _, index) = build_small();
        let out = index
            .search(
                queries.row(0),
                10,
                &SearchParams::default().with_search_list(50),
            )
            .unwrap();
        for step in &out.trace.steps {
            if let crate::trace::TraceStep::Read { reqs } = step {
                for r in reqs {
                    assert_eq!(r.len, 4096);
                    assert_eq!(r.offset % 4096, 0);
                }
            }
        }
        assert!(out.trace.io_count() > 0);
    }

    #[test]
    fn beam_width_trades_hops_for_parallel_reads() {
        let (_, queries, _, index) = build_small();
        let narrow = index
            .search(
                queries.row(1),
                10,
                &SearchParams::default()
                    .with_search_list(50)
                    .with_beam_width(1),
            )
            .unwrap();
        let wide = index
            .search(
                queries.row(1),
                10,
                &SearchParams::default()
                    .with_search_list(50)
                    .with_beam_width(8),
            )
            .unwrap();
        assert!(
            wide.trace.hops() < narrow.trace.hops(),
            "wider beams must mean fewer round trips: {} vs {}",
            wide.trace.hops(),
            narrow.trace.hops()
        );
        // Wider beams may read somewhat more in total (wasted fetches).
        assert!(wide.trace.read_bytes() >= narrow.trace.read_bytes());
    }

    #[test]
    fn beam_width_one_matches_best_first_recall() {
        let (_, queries, gt, index) = build_small();
        let p = SearchParams::default()
            .with_search_list(30)
            .with_beam_width(1);
        let recall = mean_recall(&index, &queries, &gt, &p);
        assert!(recall > 0.9, "best-first recall {recall}");
    }

    #[test]
    fn memory_is_compressed_storage_is_full() {
        let (base, _, _, index) = build_small();
        let raw_bytes = (base.len() * base.row_bytes()) as u64;
        assert!(
            index.memory_bytes() < raw_bytes / 4,
            "PQ memory {} should be far below raw {}",
            index.memory_bytes(),
            raw_bytes
        );
        assert!(
            index.storage_bytes() >= raw_bytes,
            "device holds full vectors + graph"
        );
    }

    #[test]
    fn search_list_below_k_is_clamped() {
        let (_, queries, _, index) = build_small();
        let p = SearchParams::default().with_search_list(1);
        let out = index.search(queries.row(0), 10, &p).unwrap();
        assert_eq!(out.neighbors.len(), 10);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (_, queries, _, index) = build_small();
        assert!(index
            .search(&[0.0; 8], 10, &SearchParams::default())
            .is_err());
        assert!(index
            .search(queries.row(0), 0, &SearchParams::default())
            .is_err());
        let data = EmbeddingModel::new(60, 2, 1).generate(100);
        let bad = DiskAnnConfig {
            pq_m: 7,
            ..DiskAnnConfig::default()
        };
        assert!(DiskAnnIndex::build(&data, Metric::L2, bad).is_err());
    }

    #[test]
    fn default_pq_m_divides_dim() {
        for dim in [768usize, 1536, 100, 60] {
            let model = EmbeddingModel::new(dim, 2, 1);
            let base = model.generate(300);
            let config = DiskAnnConfig {
                graph: VamanaConfig {
                    r: 8,
                    l_build: 20,
                    ..VamanaConfig::default()
                },
                pq_ksub: 16,
                ..DiskAnnConfig::default()
            };
            let index = DiskAnnIndex::build(&base, Metric::L2, config).unwrap();
            assert_eq!(dim % index.pq_m(), 0, "dim {dim}");
        }
    }
}
