//! HNSW over memory-mapped vectors — Qdrant's storage-based mode.
//!
//! The paper (§III-C) evaluates Qdrant "with mmap and limited memory
//! resources" and finds *no statistically different performance* from the
//! memory-based setup — because the testbed's 256 GiB of RAM kept every
//! vector page cached. This index models that mechanism: the graph stays in
//! memory, vectors live in a packed file accessed through an LRU page cache,
//! and every page miss during graph traversal becomes a blocking 4 KiB read
//! (a major page fault). With a cache at least as large as the vector file,
//! searches after warm-up do no I/O at all — reproducing the paper's
//! observation; with a constrained cache, the dependent-read pattern of
//! graph traversal appears.
//!
//! Unlike the other indexes, the page cache is *stateful across queries*
//! (that is the point of mmap), so the index is `Sync` via an internal lock
//! and traces depend on query order.

use crate::hnsw::{HnswConfig, HnswIndex};
use crate::layout::SECTOR_BYTES;
use crate::trace::{IoReq, QueryTrace, SearchOutput};
use crate::{SearchParams, VectorIndex};
use sann_core::sync::Mutex;
use sann_core::{Dataset, Error, Metric, Result};
use sann_ssdsim::PageCache;

/// Device byte offset of the packed vector file.
const VECTOR_FILE_BASE: u64 = 4 << 40;

/// An HNSW index whose vectors are memory-mapped from storage.
pub struct MmapHnswIndex {
    inner: HnswIndex,
    cache: Mutex<PageCache>,
    row_bytes: u64,
}

impl std::fmt::Debug for MmapHnswIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapHnswIndex")
            .field("len", &self.inner.len())
            .field("dim", &self.inner.dim())
            .finish()
    }
}

impl MmapHnswIndex {
    /// Builds the graph and attaches a page cache of `cache_bytes` for the
    /// vector file (`0` disables caching — every access faults).
    ///
    /// # Errors
    ///
    /// Propagates HNSW build errors.
    pub fn build(
        data: &Dataset,
        metric: Metric,
        config: HnswConfig,
        cache_bytes: u64,
    ) -> Result<MmapHnswIndex> {
        let inner = HnswIndex::build(data, metric, config)?;
        Ok(MmapHnswIndex {
            inner,
            cache: Mutex::new(PageCache::new(cache_bytes)),
            row_bytes: data.row_bytes() as u64,
        })
    }

    /// Bytes of the packed vector file on storage.
    pub fn vector_file_bytes(&self) -> u64 {
        self.inner.len() as u64 * self.row_bytes
    }

    /// Page-cache hit/miss counters so far.
    pub fn cache_counters(&self) -> (u64, u64) {
        let cache = self.cache.lock();
        (cache.hits(), cache.misses())
    }

    /// Drops every cached page (the paper's between-run
    /// `echo 1 > /proc/sys/vm/drop_caches`).
    pub fn drop_caches(&self) {
        self.cache.lock().drop_caches();
    }

    /// Touches the pages of row `id`; returns the faulted reads (one 4 KiB
    /// request per missed page).
    fn touch_row(&self, id: u32) -> Vec<IoReq> {
        let start = VECTOR_FILE_BASE + id as u64 * self.row_bytes;
        let end = start + self.row_bytes;
        let mut cache = self.cache.lock();
        let mut faults = Vec::new();
        let mut page = start / SECTOR_BYTES * SECTOR_BYTES;
        while page < end {
            if cache.access(page, SECTOR_BYTES as u32) > 0 {
                // The vector file holds packed full-precision rows; the page's
                // needed bytes are its overlap with this row.
                let needed = end.min(page + SECTOR_BYTES) - start.max(page);
                faults.push(IoReq::tagged(
                    page,
                    SECTOR_BYTES as u32,
                    needed as u32,
                    sann_obs::IoProvenance::VectorBlock,
                ));
            }
            page += SECTOR_BYTES;
        }
        faults
    }
}

impl VectorIndex for MmapHnswIndex {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn kind(&self) -> &'static str {
        "hnsw-mmap"
    }

    fn is_storage_based(&self) -> bool {
        true
    }

    fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Result<SearchOutput> {
        if query.len() != self.inner.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.inner.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_parameter("k", "must be positive"));
        }
        let ef = params.ef_search.max(k);
        let trace = std::cell::RefCell::new(QueryTrace::new());
        let data = self.inner.data();
        let metric = self.metric();
        let mut found = self.inner.search_graph(
            |id| {
                // A page fault blocks the traversal: each missed page is a
                // dependent 4 KiB read before the distance can be computed.
                let faults = self.touch_row(id);
                let mut t = trace.borrow_mut();
                t.push_read(faults);
                t.push_compute(1, data.dim() as u32);
                metric.distance(query, data.row(id as usize))
            },
            ef,
        );
        found.truncate(k);
        Ok(SearchOutput {
            neighbors: found,
            trace: into_inner(trace),
        })
    }

    fn memory_bytes(&self) -> u64 {
        // Graph edges only; vectors are file-backed.
        self.inner.memory_bytes() - self.vector_file_bytes()
    }

    fn storage_bytes(&self) -> u64 {
        self.vector_file_bytes().div_ceil(SECTOR_BYTES) * SECTOR_BYTES
    }
}

impl MmapHnswIndex {
    fn metric(&self) -> Metric {
        // The inner index owns the metric; re-derive it from a probe search
        // is overkill — expose it directly.
        self.inner.metric()
    }
}

fn into_inner(trace: std::cell::RefCell<QueryTrace>) -> QueryTrace {
    trace.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sann_datagen::EmbeddingModel;

    fn world() -> (Dataset, Dataset) {
        let model = EmbeddingModel::new(64, 8, 44);
        (model.generate(2_000), model.generate_queries(20))
    }

    #[test]
    fn ample_cache_means_no_io_after_warmup() {
        // The paper's Qdrant observation: with enough RAM, the mmap setup
        // performs identically to the memory setup (no device traffic).
        let (base, queries) = world();
        let cache = 2 * base.len() as u64 * base.row_bytes() as u64;
        let index = MmapHnswIndex::build(&base, Metric::L2, HnswConfig::default(), cache).unwrap();
        // Warm-up pass.
        let mut cold_reads = 0u64;
        for q in queries.iter() {
            cold_reads += index
                .search(q, 10, &SearchParams::default())
                .unwrap()
                .trace
                .io_count();
        }
        assert!(cold_reads > 0, "cold cache must fault");
        // Repeat pass: everything cached.
        let mut warm_reads = 0u64;
        for q in queries.iter() {
            warm_reads += index
                .search(q, 10, &SearchParams::default())
                .unwrap()
                .trace
                .io_count();
        }
        assert_eq!(warm_reads, 0, "warm cache must not fault");
    }

    #[test]
    fn constrained_cache_keeps_faulting() {
        let (base, queries) = world();
        // Cache fits 5% of the vector file.
        let cache = base.len() as u64 * base.row_bytes() as u64 / 20;
        let index = MmapHnswIndex::build(&base, Metric::L2, HnswConfig::default(), cache).unwrap();
        for q in queries.iter() {
            index.search(q, 10, &SearchParams::default()).unwrap();
        }
        let mut steady = 0u64;
        for q in queries.iter() {
            steady += index
                .search(q, 10, &SearchParams::default())
                .unwrap()
                .trace
                .io_count();
        }
        assert!(steady > 0, "a thrashing cache keeps reading");
        let (hits, misses) = index.cache_counters();
        assert!(hits > 0 && misses > 0);
    }

    #[test]
    fn results_match_memory_hnsw() {
        let (base, queries) = world();
        let mmap = MmapHnswIndex::build(&base, Metric::L2, HnswConfig::default(), 1 << 30).unwrap();
        let mem = HnswIndex::build(&base, Metric::L2, HnswConfig::default()).unwrap();
        for q in queries.iter().take(5) {
            let a = mmap.search(q, 5, &SearchParams::default()).unwrap();
            let b = mem.search(q, 5, &SearchParams::default()).unwrap();
            assert_eq!(a.ids(), b.ids(), "placement must not change results");
        }
    }

    #[test]
    fn drop_caches_restores_cold_behaviour() {
        let (base, queries) = world();
        let index =
            MmapHnswIndex::build(&base, Metric::L2, HnswConfig::default(), 1 << 30).unwrap();
        for q in queries.iter() {
            index.search(q, 10, &SearchParams::default()).unwrap();
        }
        index.drop_caches();
        let reads = index
            .search(queries.row(0), 10, &SearchParams::default())
            .unwrap()
            .trace
            .io_count();
        assert!(reads > 0, "dropped caches must fault again");
    }

    #[test]
    fn reads_are_4k_sector_aligned() {
        let (base, queries) = world();
        let index = MmapHnswIndex::build(&base, Metric::L2, HnswConfig::default(), 0).unwrap();
        let out = index
            .search(queries.row(0), 10, &SearchParams::default())
            .unwrap();
        for step in &out.trace.steps {
            if let crate::trace::TraceStep::Read { reqs } = step {
                for r in reqs {
                    assert_eq!(r.len as u64, SECTOR_BYTES);
                    assert_eq!(r.offset % SECTOR_BYTES, 0);
                }
            }
        }
    }
}
