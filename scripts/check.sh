#!/usr/bin/env bash
# The full local gate: formatting, clippy (warnings are errors), the
# workspace determinism lint, and the test suite. CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> sann-xtask lint"
cargo run -q -p sann-xtask -- lint

echo "==> sann-xtask analyze (layering, panic-path, cast-safety, hot-loop; ratcheted)"
# Fails on any deny-rule violation, any ratchet regression against
# analyze-baseline.toml, and any unaudited (reason-less) allow marker.
cargo run -q -p sann-xtask -- analyze

echo "==> sann-xtask analyze SARIF byte-stability"
sarif_tmp="$(mktemp -d)"
cargo run -q -p sann-xtask -- analyze --format sarif >"$sarif_tmp/a.sarif" || true
cargo run -q -p sann-xtask -- analyze --format sarif >"$sarif_tmp/b.sarif" || true
diff "$sarif_tmp/a.sarif" "$sarif_tmp/b.sarif"
rm -rf "$sarif_tmp"

echo "==> cargo test"
cargo test -q --workspace

echo "==> trace exporter golden files"
cargo test -q -p sann-engine --test trace_golden

echo "==> fault-injection histogram golden files"
cargo test -q -p sann-engine --test fault_golden

echo "==> observability overhead gate (BENCH_obs.json)"
# Asserts span tracing at level `run` and provenance tagging each cost
# < 2% over the untraced/untagged hot loop, and archives the measured
# numbers at the workspace root.
cargo bench -q -p sann-bench --bench obs_overhead

echo "==> vdbbench cold/warm artifact-cache invariance"
cargo build -q --release -p sann-bench
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
bin="target/release/vdbbench"
"$bin" --cache-dir "$tmp/cache" --results "$tmp/cold" table2 >"$tmp/cold.out" 2>"$tmp/cold.err"
"$bin" --cache-dir "$tmp/cache" --results "$tmp/warm" table2 >"$tmp/warm.out" 2>"$tmp/warm.err"
diff -r "$tmp/cold" "$tmp/warm"
diff "$tmp/cold.out" "$tmp/warm.out"
if grep -E '^\[prep\]' "$tmp/warm.err"; then
    echo "FAIL: warm table2 run still did prep work (lines above)"
    exit 1
fi
echo "warm table2 replayed from cache: identical CSVs, zero [prep] lines"

echo "==> vdbbench iostat double-run byte-stability"
# The I/O characterization report — provenance breakdown, telemetry
# timelines, and the $/query ledger under healthy + aging devices — must
# be byte-identical across runs, stdout and every CSV alike.
"$bin" --cache-dir "$tmp/cache" --results "$tmp/iostat-a" --scale 0.001 --dataset cohere-s --duration-secs 0.2 iostat --clients 4 >"$tmp/iostat-a.out" 2>/dev/null
"$bin" --cache-dir "$tmp/cache" --results "$tmp/iostat-b" --scale 0.001 --dataset cohere-s --duration-secs 0.2 iostat --clients 4 >"$tmp/iostat-b.out" 2>/dev/null
diff -r "$tmp/iostat-a" "$tmp/iostat-b"
diff "$tmp/iostat-a.out" "$tmp/iostat-b.out"
echo "iostat double run: identical report and CSVs"

echo "==> vdbbench explore double-run byte-stability"
# The I/O design-space sweep — eight {layout x prefetch x pipelining}
# strategies at fixed tuned knobs — must replay byte-for-byte: the report
# text and both CSV exports alike.
"$bin" --cache-dir "$tmp/cache" --results "$tmp/explore-a" --scale 0.001 --dataset cohere-s --duration-secs 0.2 explore --clients 4 >"$tmp/explore-a.out" 2>/dev/null
"$bin" --cache-dir "$tmp/cache" --results "$tmp/explore-b" --scale 0.001 --dataset cohere-s --duration-secs 0.2 explore --clients 4 >"$tmp/explore-b.out" 2>/dev/null
diff -r "$tmp/explore-a" "$tmp/explore-b"
diff "$tmp/explore-a.out" "$tmp/explore-b.out"
echo "explore double run: identical report and CSVs"

echo "All checks passed."
