#!/usr/bin/env bash
# The full local gate: formatting, clippy (warnings are errors), the
# workspace determinism lint, and the test suite. CI runs exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> sann-xtask lint"
cargo run -q -p sann-xtask -- lint

echo "==> cargo test"
cargo test -q --workspace

echo "==> trace exporter golden files"
cargo test -q -p sann-engine --test trace_golden

echo "All checks passed."
