//! Quickstart: create a collection, insert vectors with payloads, build an
//! index, and search — the five-minute tour of the `sann` API.
//!
//! Run with: `cargo run --release --example quickstart`

use sann::core::Metric;
use sann::index::{HnswConfig, SearchParams};
use sann::vdb::{Collection, Filter, IndexSpec, Payload, Value};

fn main() -> sann::core::Result<()> {
    // A collection of 64-dimensional vectors under squared-L2 distance.
    let mut docs = Collection::new("docs", 64, Metric::L2)?;

    // Insert a few thousand synthetic "document embeddings", each tagged
    // with a language and a year.
    let model = sann::datagen::EmbeddingModel::new(64, 8, 42);
    let vectors = model.generate(5_000);
    for (i, row) in vectors.iter().enumerate() {
        let payload = Payload::new()
            .with("lang", if i % 3 == 0 { "en" } else { "de" })
            .with("year", 2015 + (i % 10) as i64);
        docs.insert(row, payload)?;
    }
    println!("inserted {} vectors", docs.len());

    // Build a memory-based HNSW index (the paper's Table II parameters:
    // M=16, efConstruction=200).
    docs.build_index(IndexSpec::Hnsw(HnswConfig::default()))?;
    println!("built {} index", docs.index().expect("index built").kind());

    // Plain search.
    let query = vectors.row(123);
    let hits = docs.search(query, 5, &SearchParams::default(), None)?;
    println!("\ntop-5 for vector #123 (expect itself first):");
    for hit in &hits {
        println!(
            "  id={:<6} dist={:.4} lang={:?}",
            hit.id,
            hit.dist,
            hit.payload.get("lang")
        );
    }
    assert_eq!(hits[0].id, 123);

    // Filtered search: only English documents from 2020 onwards.
    let filter = Filter::And(vec![
        Filter::eq("lang", Value::Str("en".into())),
        Filter::range("year", 2020.0, 2024.0),
    ]);
    let filtered = docs.search(query, 5, &SearchParams::default(), Some(&filter))?;
    println!("\ntop-5 english & 2020+:");
    for hit in &filtered {
        println!(
            "  id={:<6} dist={:.4} year={:?}",
            hit.id,
            hit.dist,
            hit.payload.get("year")
        );
    }

    // Delete and observe the tombstone take effect.
    docs.delete(123)?;
    let after = docs.search(query, 1, &SearchParams::default(), None)?;
    assert_ne!(after[0].id, 123);
    println!("\nafter deleting #123 the best hit is #{}", after[0].id);
    Ok(())
}
