//! I/O characterization of a storage-based search — a miniature of the
//! paper's Figs. 5 and 6: run a closed-loop DiskANN workload through the
//! execution engine and inspect the block-layer trace.
//!
//! Run with: `cargo run --release --example io_characterization`

use sann::core::Metric;
use sann::datagen::EmbeddingModel;
use sann::engine::{Executor, RunConfig};
use sann::index::{DiskAnnConfig, SearchParams, VectorIndex};
use sann::vdb::DbProfile;

fn main() -> sann::core::Result<()> {
    let model = EmbeddingModel::new(768, 16, 11);
    let base = model.generate(10_000);
    let queries = model.generate_queries(100);
    let index = sann::index::DiskAnnIndex::build(&base, Metric::L2, DiskAnnConfig::default())?;

    // Collect real query traces.
    let params = SearchParams::default().with_search_list(20);
    let mut traces = Vec::new();
    for q in queries.iter() {
        traces.push(index.search(q, 10, &params)?.trace);
    }

    // Compile them under the Milvus profile and replay at three concurrency
    // levels for a simulated 5 seconds each.
    let builder = DbProfile::milvus().plan_builder(1.0);
    let plans = builder.build_all(&traces);
    println!("concurrency   QPS     P99(us)   MiB/s    4KiB-frac  per-query-MiB/s");
    for concurrency in [1usize, 16, 256] {
        let config = RunConfig {
            cores: 20,
            concurrency,
            duration_us: 5e6,
            ..RunConfig::default()
        };
        let m = Executor::new(config).run(&plans);
        println!(
            "{concurrency:>11}   {:<7.0} {:<9.0} {:<8.1} {:<10.5} {:.3}",
            m.qps,
            m.p99_latency_us,
            m.mean_bandwidth_mib,
            m.io_stats.size_fraction(4096),
            m.per_query_bandwidth_mib(),
        );
        if concurrency == 256 {
            println!("\nper-second bandwidth timeline at 256 threads (MiB/s):");
            let bars: Vec<String> = m
                .bandwidth_timeline_mib
                .iter()
                .map(|b| format!("{b:.0}"))
                .collect();
            println!("  [{}]", bars.join(", "));
            println!("\nrequest-size histogram:");
            for (size, count) in &m.io_stats.size_histogram {
                println!("  {size:>7} B : {count}");
            }
        }
    }
    Ok(())
}
