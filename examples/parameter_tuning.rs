//! Tuning the accuracy/performance trade-off — the paper's §VI in
//! miniature: sweep DiskANN's `search_list` and HNSW's `efSearch` and print
//! the recall/latency/I-O frontier so you can pick an operating point.
//!
//! Run with: `cargo run --release --example parameter_tuning`

use sann::core::Metric;
use sann::datagen::{EmbeddingModel, GroundTruth};
use sann::index::{DiskAnnConfig, DiskAnnIndex, HnswConfig, HnswIndex, SearchParams, VectorIndex};

fn main() -> sann::core::Result<()> {
    let model = EmbeddingModel::new(128, 16, 99);
    let base = model.generate(20_000);
    let queries = model.generate_queries(200);
    let truth = GroundTruth::bruteforce(&base, &queries, Metric::L2, 10);

    let diskann = DiskAnnIndex::build(&base, Metric::L2, DiskAnnConfig::default())?;
    println!("DiskANN: search_list sweep (k=10)");
    println!("search_list  recall@10  mean-dists  mean-hops  mean-KiB-read");
    for l in [10usize, 20, 40, 60, 80, 100] {
        let params = SearchParams::default().with_search_list(l);
        let (recall, dists, hops, kib) = evaluate(&diskann, &queries, &truth, &params)?;
        println!("{l:>11}  {recall:>9.3}  {dists:>10.0}  {hops:>9.1}  {kib:>13.1}");
    }

    let hnsw = HnswIndex::build(&base, Metric::L2, HnswConfig::default())?;
    println!("\nHNSW: efSearch sweep (k=10)");
    println!("   efSearch  recall@10  mean-dists");
    for ef in [10usize, 20, 40, 80, 160] {
        let params = SearchParams::default().with_ef_search(ef);
        let (recall, dists, _, _) = evaluate(&hnsw, &queries, &truth, &params)?;
        println!("{ef:>11}  {recall:>9.3}  {dists:>10.0}");
    }

    println!(
        "\nNote the paper's KF-3: recall saturates quickly while cost keeps \
         growing — tune the smallest value that meets your recall target."
    );
    Ok(())
}

/// Mean (recall, distance evals, hops, KiB read) of an index over a query set.
fn evaluate(
    index: &dyn VectorIndex,
    queries: &sann::core::Dataset,
    truth: &GroundTruth,
    params: &SearchParams,
) -> sann::core::Result<(f64, f64, f64, f64)> {
    let n = queries.len() as f64;
    let (mut recall, mut dists, mut hops, mut kib) = (0.0, 0.0, 0.0, 0.0);
    for (i, q) in queries.iter().enumerate() {
        let out = index.search(q, 10, params)?;
        recall += sann::core::recall::recall_at_k(truth.neighbors(i), &out.ids(), 10);
        dists += (out.trace.compute_count() + out.trace.pq_lookup_count()) as f64;
        hops += out.trace.hops() as f64;
        kib += out.trace.read_bytes() as f64 / 1024.0;
    }
    Ok((recall / n, dists / n, hops / n, kib / n))
}
