//! A retrieval-augmented-generation (RAG) retrieval tier on a storage-based
//! index — the scenario motivating the paper's study.
//!
//! A knowledge base too large for memory is indexed with DiskANN: compressed
//! codes stay in RAM while full vectors and the graph live on the (simulated)
//! NVMe SSD. The example retrieves supporting chunks for questions, then
//! reports what the retrieval cost in I/O — the paper's core measurement.
//!
//! Run with: `cargo run --release --example rag_retrieval`

use sann::core::Metric;
use sann::datagen::EmbeddingModel;
use sann::index::{DiskAnnConfig, DiskAnnIndex, SearchParams, VectorIndex};

fn main() -> sann::core::Result<()> {
    // "Embed" a 20k-chunk knowledge base (768-d, the Cohere embedding size).
    let model = EmbeddingModel::new(768, 32, 7);
    let chunks = model.generate(20_000);
    println!(
        "knowledge base: {} chunks x {}-d",
        chunks.len(),
        chunks.dim()
    );

    // Build the storage-based index.
    let index = DiskAnnIndex::build(&chunks, Metric::L2, DiskAnnConfig::default())?;
    let raw_mib = (chunks.len() * chunks.row_bytes()) as f64 / (1 << 20) as f64;
    println!(
        "diskann built: {:.1} MiB raw vectors -> {:.1} MiB resident (PQ codes), {:.1} MiB on disk",
        raw_mib,
        index.memory_bytes() as f64 / (1 << 20) as f64,
        index.storage_bytes() as f64 / (1 << 20) as f64,
    );

    // Retrieve for a batch of questions with the paper's default
    // search-time parameters (search_list=10, beam_width=4).
    let questions = model.generate_queries(8);
    let params = SearchParams::default();
    println!(
        "\nretrieval (k=5, search_list={}, beam_width={}):",
        params.search_list, params.beam_width
    );
    let mut total_bytes = 0u64;
    let mut total_hops = 0u64;
    for (i, q) in questions.iter().enumerate() {
        let out = index.search(q, 5, &params)?;
        total_bytes += out.trace.read_bytes();
        total_hops += out.trace.hops();
        let ids: Vec<u32> = out.ids();
        println!(
            "  q{i}: chunks {:?}  ({} graph hops, {} KiB read)",
            ids,
            out.trace.hops(),
            out.trace.read_bytes() / 1024
        );
    }
    println!(
        "\nmean per question: {:.1} KiB read over {:.1} hops — every request 4 KiB, as the paper's O-15 observes",
        total_bytes as f64 / 1024.0 / questions.len() as f64,
        total_hops as f64 / questions.len() as f64,
    );

    // The RAG answer step would now stuff the retrieved chunks into an LLM
    // prompt; that part is out of scope for a storage characterization.
    Ok(())
}
