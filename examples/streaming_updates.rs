//! Streaming updates on a storage-based index — the paper's §VIII future
//! work, using the FreshDiskANN-style mutable index: inserts that read
//! (placement search) and write (dirtied node records), lazy deletes, and
//! delete consolidation.
//!
//! Run with: `cargo run --release --example streaming_updates`

use sann::core::Metric;
use sann::datagen::EmbeddingModel;
use sann::index::{FreshConfig, FreshDiskAnnIndex, SearchParams, VamanaConfig, VectorIndex};

fn main() -> sann::core::Result<()> {
    let model = EmbeddingModel::new(128, 16, 2024);
    let base = model.generate(8_000);
    let mut index = FreshDiskAnnIndex::build(
        &base,
        Metric::L2,
        FreshConfig {
            graph: VamanaConfig {
                r: 32,
                l_build: 60,
                ..Default::default()
            },
            l_insert: 60,
            pq_m: 0,
            pq_ksub: 256,
        },
    )?;
    println!(
        "built mutable diskann: {} vectors, {:.1} MiB on disk",
        index.live_len(),
        index.storage_bytes() as f64 / (1 << 20) as f64
    );

    // Stream 500 inserts, tracking their I/O cost.
    let fresh = model.generate_stream(500, 77);
    let (mut read_kib, mut write_kib) = (0u64, 0u64);
    for row in fresh.iter() {
        let (_, trace) = index.insert(row)?;
        read_kib += trace.read_bytes() / 1024;
        write_kib += index
            .take_insert_writes()
            .iter()
            .map(|r| r.len as u64)
            .sum::<u64>()
            / 1024;
    }
    println!(
        "inserted 500: mean {:.1} KiB read + {:.1} KiB written per insert",
        read_kib as f64 / 500.0,
        write_kib as f64 / 500.0
    );

    // Verify the stream is searchable.
    let probe = fresh.row(499);
    let hit = index.search(probe, 1, &SearchParams::default().with_search_list(50))?;
    println!(
        "latest insert found at distance {:.4}",
        hit.neighbors[0].dist
    );

    // Delete a third of the original corpus, then consolidate.
    for id in (0..8_000u32).step_by(3) {
        index.delete(id)?;
    }
    println!(
        "after deletes: {} live of {} slots",
        index.live_len(),
        index.slots()
    );
    let repaired = index.consolidate();
    println!("consolidation repaired {repaired} nodes' edges");

    let out = index.search(probe, 10, &SearchParams::default().with_search_list(50))?;
    assert!(out.neighbors.iter().all(|n| n.id >= 8_000 || n.id % 3 != 0));
    println!("post-consolidation search returns only live vectors");
    Ok(())
}
